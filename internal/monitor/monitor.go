// Package monitor implements the global and proactive QoS monitoring of
// Chapter V §1.1: per-service observation windows with EWMA estimation
// and linear-trend prediction, and a composition-level assessor that
// aggregates run-time QoS over the task tree and flags current and
// predicted violations of the user's global constraints — the trigger of
// QoS-driven adaptation.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/task"
)

// Observation is one measured invocation of a service.
type Observation struct {
	// Service is the observed service.
	Service registry.ServiceID
	// Vector is the measured QoS (aligned to the monitor's property set).
	Vector qos.Vector
	// Time stamps the observation.
	Time time.Time
	// Success reports whether the invocation succeeded.
	Success bool
}

// Options tune the monitor.
type Options struct {
	// WindowSize is the per-service observation ring size; 0 means 20.
	WindowSize int
	// Alpha is the EWMA smoothing factor in (0,1]; 0 means 0.3.
	Alpha float64
	// Obs, when set, makes the monitor export telemetry into the hub's
	// registry: observation/failure counters, per-service EWMA gauges
	// and the violation counters the composition assessor increments.
	Obs *obs.Hub
}

func (o Options) withDefaults() Options {
	if o.WindowSize <= 0 {
		o.WindowSize = 20
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	return o
}

type window struct {
	obs      []Observation // ring, oldest first after rotation
	next     int
	filled   bool
	ewma     qos.Vector
	total    int
	failures int
}

// monitorMetrics bundles the monitor's registry handles; the zero
// value is a full set of nil no-op handles.
type monitorMetrics struct {
	observations *obs.Counter
	failures     *obs.Counter
	ewma         *obs.GaugeVec
	violations   *obs.CounterVec
}

func monitorMetricsFor(hub *obs.Hub) monitorMetrics {
	if hub == nil {
		return monitorMetrics{}
	}
	r := hub.Metrics
	return monitorMetrics{
		observations: r.Counter("qasom_monitor_observations_total",
			"QoS observations reported to the monitor."),
		failures: r.Counter("qasom_monitor_failures_total",
			"Observations reporting a failed invocation."),
		ewma: r.GaugeVec("qasom_monitor_ewma",
			"EWMA run-time QoS estimate per service and property.",
			"service", "property"),
		violations: r.CounterVec("qasom_monitor_violations_total",
			"Constraint violations flagged by composition assessment, by kind (current|predicted).",
			"kind"),
	}
}

// healthListener is one SubscribeHealth registration: a success-rate
// threshold and the callback fired when a service crosses it.
type healthListener struct {
	threshold float64
	fn        func(id registry.ServiceID, healthy bool)
}

// Monitor collects run-time QoS observations per service. Safe for
// concurrent use.
type Monitor struct {
	mu      sync.RWMutex
	ps      *qos.PropertySet
	opts    Options
	met     monitorMetrics
	windows map[registry.ServiceID]*window

	nextListener int
	listeners    map[int]healthListener
}

// New creates a monitor for the given property set.
func New(ps *qos.PropertySet, opts Options) *Monitor {
	return &Monitor{
		ps:      ps,
		opts:    opts.withDefaults(),
		met:     monitorMetricsFor(opts.Obs),
		windows: make(map[registry.ServiceID]*window),
	}
}

// SubscribeHealth registers a callback fired whenever a service's
// observed success rate crosses the threshold in either direction
// (healthy ⇔ rate ≥ threshold, matching the adaptation manager's
// MinSuccessRate filter). The unobserved prior counts as healthy, so the
// very first failing observations of a service do notify. Callbacks run
// synchronously on the Report goroutine but outside the monitor's lock —
// they may call back into the monitor, but should return quickly. The
// returned cancel function unsubscribes.
func (m *Monitor) SubscribeHealth(threshold float64, fn func(id registry.ServiceID, healthy bool)) (cancel func()) {
	m.mu.Lock()
	if m.listeners == nil {
		m.listeners = make(map[int]healthListener)
	}
	key := m.nextListener
	m.nextListener++
	m.listeners[key] = healthListener{threshold: threshold, fn: fn}
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		delete(m.listeners, key)
		m.mu.Unlock()
	}
}

// Report records one observation. Vectors of the wrong arity are
// rejected.
func (m *Monitor) Report(obs Observation) error {
	if len(obs.Vector) != m.ps.Len() {
		return fmt.Errorf("monitor: observation arity %d, want %d", len(obs.Vector), m.ps.Len())
	}
	m.mu.Lock()
	w := m.windows[obs.Service]
	if w == nil {
		w = &window{obs: make([]Observation, m.opts.WindowSize)}
		m.windows[obs.Service] = w
	}
	rateBefore := w.successRate()
	w.obs[w.next] = obs
	w.next = (w.next + 1) % len(w.obs)
	if w.next == 0 {
		w.filled = true
	}
	w.total++
	if !obs.Success {
		w.failures++
	}
	if w.ewma == nil {
		w.ewma = obs.Vector.Clone()
	} else {
		a := m.opts.Alpha
		for j := range w.ewma {
			w.ewma[j] = a*obs.Vector[j] + (1-a)*w.ewma[j]
		}
	}
	rateAfter := w.successRate()
	// Collect threshold crossings under the lock, notify outside it: a
	// listener may itself read the monitor (or fan out into substitution
	// indexes) without deadlocking Report.
	var crossed []healthListener
	for _, l := range m.listeners {
		if (rateBefore >= l.threshold) != (rateAfter >= l.threshold) {
			crossed = append(crossed, l)
		}
	}
	m.met.observations.Inc()
	if !obs.Success {
		m.met.failures.Inc()
	}
	if m.met.ewma != nil {
		for j, name := range m.ps.Names() {
			m.met.ewma.With(string(obs.Service), name).Set(w.ewma[j])
		}
	}
	m.mu.Unlock()
	for _, l := range crossed {
		l.fn(obs.Service, rateAfter >= l.threshold)
	}
	return nil
}

// successRate is SuccessRate for one window (1 when unobserved).
func (w *window) successRate() float64 {
	if w == nil || w.total == 0 {
		return 1
	}
	return 1 - float64(w.failures)/float64(w.total)
}

// Len returns the number of observations held for a service (capped at
// the window size).
func (m *Monitor) Len(id registry.ServiceID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	w := m.windows[id]
	if w == nil {
		return 0
	}
	if w.filled {
		return len(w.obs)
	}
	return w.next
}

// Estimate returns the EWMA run-time QoS estimate for a service; false
// when the service has never been observed.
func (m *Monitor) Estimate(id registry.ServiceID) (qos.Vector, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	w := m.windows[id]
	if w == nil || w.ewma == nil {
		return nil, false
	}
	return w.ewma.Clone(), true
}

// SuccessRate returns the observed success ratio of a service (1 when
// unobserved: optimistic prior).
func (m *Monitor) SuccessRate(id registry.ServiceID) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.windows[id].successRate()
}

// ordered returns the window's observations oldest-first.
func (w *window) ordered() []Observation {
	if !w.filled {
		out := make([]Observation, w.next)
		copy(out, w.obs[:w.next])
		return out
	}
	out := make([]Observation, 0, len(w.obs))
	out = append(out, w.obs[w.next:]...)
	out = append(out, w.obs[:w.next]...)
	return out
}

// Percentile returns the q-quantile (q in [0,1]) of property j over the
// service's observation window, using nearest-rank interpolation; false
// when the service has no observations. Tail percentiles (P95/P99) catch
// degradation modes a mean hides.
func (m *Monitor) Percentile(id registry.ServiceID, j int, q float64) (float64, bool) {
	if j < 0 || j >= m.ps.Len() {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	m.mu.RLock()
	w := m.windows[id]
	var obs []Observation
	if w != nil {
		obs = w.ordered()
	}
	m.mu.RUnlock()
	if len(obs) == 0 {
		return 0, false
	}
	values := make([]float64, len(obs))
	for i, o := range obs {
		values[i] = o.Vector[j]
	}
	sort.Float64s(values)
	idx := int(math.Ceil(q*float64(len(values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return values[idx], true
}

// Predict extrapolates each property `steps` observations ahead with a
// least-squares linear trend over the window — the proactive part of the
// monitoring: a degrading service is flagged before it actually violates
// the constraints. It returns false when fewer than three observations
// exist.
func (m *Monitor) Predict(id registry.ServiceID, steps int) (qos.Vector, bool) {
	if steps < 1 {
		steps = 1
	}
	m.mu.RLock()
	w := m.windows[id]
	var obs []Observation
	if w != nil {
		obs = w.ordered()
	}
	m.mu.RUnlock()
	if len(obs) < 3 {
		return nil, false
	}
	n := float64(len(obs))
	out := m.ps.NewVector()
	for j := 0; j < m.ps.Len(); j++ {
		// Least squares over x = 0..n-1.
		var sumX, sumY, sumXY, sumXX float64
		for i, o := range obs {
			x := float64(i)
			y := o.Vector[j]
			sumX += x
			sumY += y
			sumXY += x * y
			sumXX += x * x
		}
		den := n*sumXX - sumX*sumX
		var slope, intercept float64
		if den != 0 {
			slope = (n*sumXY - sumX*sumY) / den
			intercept = (sumY - slope*sumX) / n
		} else {
			intercept = sumY / n
		}
		x := n - 1 + float64(steps)
		v := intercept + slope*x
		// Keep probabilities physical.
		if m.ps.At(j).Kind == qos.KindProbability {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
		}
		if v < 0 && m.ps.At(j).Kind != qos.KindProbability {
			v = 0
		}
		out[j] = v
	}
	return out, true
}

// Assessment is the outcome of a composition-level check.
type Assessment struct {
	// Current is the aggregated QoS using run-time estimates (advertised
	// values where a service is unobserved).
	Current qos.Vector
	// Predicted is the aggregated QoS using trend predictions where
	// available.
	Predicted qos.Vector
	// Violated lists properties whose constraints the current aggregate
	// breaks.
	Violated []string
	// PredictedViolated lists properties whose constraints the predicted
	// aggregate breaks (the proactive trigger).
	PredictedViolated []string
}

// Healthy reports whether nothing is (or is about to be) violated.
func (a *Assessment) Healthy() bool {
	return len(a.Violated) == 0 && len(a.PredictedViolated) == 0
}

// CompositionMonitor assesses a running composition against the request's
// global constraints, on current estimates and proactively on predicted
// trends.
type CompositionMonitor struct {
	task        *task.Task
	ps          *qos.PropertySet
	constraints qos.Constraints
	approach    qos.Approach
	// advertised holds the selection-time vectors, the fallback for
	// services without run-time observations yet.
	advertised map[string]qos.Vector
	// binding maps activity IDs to the currently bound service.
	mu      sync.RWMutex
	binding map[string]registry.ServiceID
}

// NewCompositionMonitor builds an assessor for one running composition.
func NewCompositionMonitor(t *task.Task, ps *qos.PropertySet, constraints qos.Constraints,
	approach qos.Approach, advertised map[string]qos.Vector, binding map[string]registry.ServiceID) *CompositionMonitor {
	adv := make(map[string]qos.Vector, len(advertised))
	for k, v := range advertised {
		adv[k] = v.Clone()
	}
	b := make(map[string]registry.ServiceID, len(binding))
	for k, v := range binding {
		b[k] = v
	}
	return &CompositionMonitor{
		task: t, ps: ps, constraints: constraints, approach: approach,
		advertised: adv, binding: b,
	}
}

// Rebind updates the bound service (and its advertised vector) for an
// activity after a substitution.
func (cm *CompositionMonitor) Rebind(activityID string, id registry.ServiceID, advertised qos.Vector) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.binding[activityID] = id
	cm.advertised[activityID] = advertised.Clone()
}

// Binding returns the currently bound service for an activity.
func (cm *CompositionMonitor) Binding(activityID string) (registry.ServiceID, bool) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	id, ok := cm.binding[activityID]
	return id, ok
}

// Assess aggregates current and predicted QoS over the task tree and
// checks the constraints. steps is the prediction horizon.
func (cm *CompositionMonitor) Assess(m *Monitor, steps int) Assessment {
	cm.mu.RLock()
	binding := make(map[string]registry.ServiceID, len(cm.binding))
	for k, v := range cm.binding {
		binding[k] = v
	}
	cm.mu.RUnlock()

	current := make(map[string]qos.Vector, len(binding))
	predicted := make(map[string]qos.Vector, len(binding))
	for act, svc := range binding {
		adv := cm.advertised[act]
		if est, ok := m.Estimate(svc); ok {
			current[act] = est
		} else if adv != nil {
			current[act] = adv
		}
		if pred, ok := m.Predict(svc, steps); ok {
			predicted[act] = pred
		} else if cur, ok := current[act]; ok {
			predicted[act] = cur
		}
	}
	a := Assessment{
		Current:   cm.task.AggregateQoS(cm.ps, current, cm.approach),
		Predicted: cm.task.AggregateQoS(cm.ps, predicted, cm.approach),
	}
	a.Violated = cm.constraints.Violated(cm.ps, a.Current)
	a.PredictedViolated = cm.constraints.Violated(cm.ps, a.Predicted)
	if m.met.violations != nil {
		if n := len(a.Violated); n > 0 {
			m.met.violations.With("current").Add(uint64(n))
		}
		if n := len(a.PredictedViolated); n > 0 {
			m.met.violations.With("predicted").Add(uint64(n))
		}
	}
	return a
}
