package graph

import (
	"fmt"

	"qasom/internal/semantics"
	"qasom/internal/task"
)

// FromTask transforms a user task into its behavioural graph (Chapter V
// §4): activities become labelled vertices, the composition patterns
// become precedence edges, and a unique initial and final vertex frame
// the graph. Loop activities are simplified per Fig. V.4: the loop body
// appears once with its vertices annotated by loop depth, and no back
// edge is produced, so the result is a DAG.
func FromTask(t *task.Task) (*Graph, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	g := New()
	initial := g.AddVertex(&Vertex{Kind: KindInitial})
	entries, exits, err := buildNode(g, t.Root, 0)
	if err != nil {
		return nil, err
	}
	final := g.AddVertex(&Vertex{Kind: KindFinal})
	for _, e := range entries {
		if err := g.AddEdge(initial, e); err != nil {
			return nil, err
		}
	}
	for _, x := range exits {
		if err := g.AddEdge(x, final); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// buildNode adds the subgraph of a task node and returns its entry and
// exit vertices.
func buildNode(g *Graph, n *task.Node, loopDepth int) (entries, exits []VertexID, err error) {
	switch n.Kind {
	case task.PatternActivity:
		a := n.Activity
		id := g.AddVertex(&Vertex{
			Kind:       KindActivity,
			ActivityID: a.ID,
			Concept:    a.Concept,
			Inputs:     append([]semantics.ConceptID(nil), a.Inputs...),
			Outputs:    append([]semantics.ConceptID(nil), a.Outputs...),
			LoopDepth:  loopDepth,
		})
		return []VertexID{id}, []VertexID{id}, nil

	case task.PatternSequence:
		var prevExits []VertexID
		for i, c := range n.Children {
			en, ex, err := buildNode(g, c, loopDepth)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				entries = en
			} else {
				for _, u := range prevExits {
					for _, v := range en {
						if err := g.AddEdge(u, v); err != nil {
							return nil, nil, err
						}
					}
				}
			}
			prevExits = ex
		}
		return entries, prevExits, nil

	case task.PatternParallel, task.PatternChoice:
		for _, c := range n.Children {
			en, ex, err := buildNode(g, c, loopDepth)
			if err != nil {
				return nil, nil, err
			}
			entries = append(entries, en...)
			exits = append(exits, ex...)
		}
		return entries, exits, nil

	case task.PatternLoop:
		// Fig. V.4: the loop collapses to its body with a depth
		// annotation; no back edge, keeping the graph acyclic.
		return buildNode(g, n.Children[0], loopDepth+1)

	default:
		return nil, nil, fmt.Errorf("graph: unknown pattern %v", n.Kind)
	}
}
