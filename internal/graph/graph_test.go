package graph

import (
	"strings"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func mkAct(id string) *task.Node {
	return task.NewActivity(&task.Activity{ID: id, Concept: semantics.ConceptID("C" + id)})
}

func TestGraphBasics(t *testing.T) {
	g := New()
	a := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "a"})
	b := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "b"})
	c := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "c"})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	// Duplicate edges are silently ignored.
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	if g.VertexCount() != 3 {
		t.Errorf("VertexCount = %d, want 3", g.VertexCount())
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Error("HasEdge direction wrong")
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop should be rejected")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Error("unknown endpoint should be rejected")
	}
	if g.OutDegree(a) != 1 || g.InDegree(c) != 1 || g.InDegree(a) != 0 {
		t.Error("degree bookkeeping wrong")
	}
	if !g.Reachable(a, c) || g.Reachable(c, a) {
		t.Error("reachability wrong")
	}
	if !g.Reachable(a, a) {
		t.Error("vertex should reach itself")
	}
	if g.Vertex(99) != nil {
		t.Error("unknown vertex should be nil")
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	a := g.AddVertex(&Vertex{Kind: KindActivity})
	b := g.AddVertex(&Vertex{Kind: KindActivity})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("zero-value graph should work: %v", err)
	}
}

func TestTopoSort(t *testing.T) {
	g := New()
	a := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "a"})
	b := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "b"})
	c := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "c"})
	_ = g.AddEdge(a, b)
	_ = g.AddEdge(b, c)
	order, acyclic := g.TopoSort()
	if !acyclic || len(order) != 3 || order[0] != a || order[2] != c {
		t.Errorf("TopoSort = %v, acyclic %v", order, acyclic)
	}
	// Introduce a cycle.
	_ = g.AddEdge(c, a)
	if _, acyclic := g.TopoSort(); acyclic {
		t.Error("cycle not detected")
	}
}

func TestFromTaskShoppingShape(t *testing.T) {
	// Bob's shopping task (Fig. V.3 style):
	// seq(browse, par(book, media), pay)
	tk := &task.Task{
		Name:    "shopping",
		Concept: semantics.ShoppingService,
		Root: task.Sequence(
			mkAct("browse"),
			task.Parallel(mkAct("book"), mkAct("media")),
			mkAct("pay"),
		),
	}
	g, err := FromTask(tk)
	if err != nil {
		t.Fatalf("FromTask: %v", err)
	}
	// 5 activity vertices? No: 4 activities + initial + final = 6.
	if g.VertexCount() != 6 {
		t.Fatalf("VertexCount = %d, want 6\n%s", g.VertexCount(), g)
	}
	init, fin := g.Initial(), g.Final()
	if init == nil || fin == nil {
		t.Fatal("initial/final vertices missing")
	}
	byAct := map[string]VertexID{}
	for _, v := range g.ActivityVertices() {
		byAct[v.ActivityID] = v.ID
	}
	wantEdges := []struct{ from, to VertexID }{
		{init.ID, byAct["browse"]},
		{byAct["browse"], byAct["book"]},
		{byAct["browse"], byAct["media"]},
		{byAct["book"], byAct["pay"]},
		{byAct["media"], byAct["pay"]},
		{byAct["pay"], fin.ID},
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e.from, e.to) {
			t.Errorf("missing edge %s -> %s\n%s", g.Vertex(e.from).Label(), g.Vertex(e.to).Label(), g)
		}
	}
	if g.EdgeCount() != len(wantEdges) {
		t.Errorf("EdgeCount = %d, want %d\n%s", g.EdgeCount(), len(wantEdges), g)
	}
	if _, acyclic := g.TopoSort(); !acyclic {
		t.Error("behavioural graph must be a DAG")
	}
}

func TestFromTaskChoiceShape(t *testing.T) {
	tk := &task.Task{
		Name: "t", Concept: "C",
		Root: task.Sequence(
			mkAct("a"),
			task.Choice(nil, mkAct("x"), mkAct("y")),
			mkAct("z"),
		),
	}
	g, err := FromTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	byAct := map[string]VertexID{}
	for _, v := range g.ActivityVertices() {
		byAct[v.ActivityID] = v.ID
	}
	// Choice branches both hang off a and both lead to z.
	for _, branch := range []string{"x", "y"} {
		if !g.HasEdge(byAct["a"], byAct[branch]) || !g.HasEdge(byAct[branch], byAct["z"]) {
			t.Errorf("choice branch %s wired wrong\n%s", branch, g)
		}
	}
}

func TestFromTaskLoopSimplification(t *testing.T) {
	tk := &task.Task{
		Name: "t", Concept: "C",
		Root: task.Sequence(
			mkAct("a"),
			task.LoopNode(qos.Loop{Min: 1, Max: 5}, task.Sequence(mkAct("body1"), mkAct("body2"))),
			mkAct("b"),
		),
	}
	g, err := FromTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	// Loop body appears once, annotated, no back edge → DAG.
	if _, acyclic := g.TopoSort(); !acyclic {
		t.Fatal("loop simplification must keep the graph acyclic")
	}
	var body1 *Vertex
	for _, v := range g.ActivityVertices() {
		if v.ActivityID == "body1" {
			body1 = v
		}
	}
	if body1 == nil || body1.LoopDepth != 1 {
		t.Errorf("loop body should be annotated with depth 1: %+v", body1)
	}
	var a *Vertex
	for _, v := range g.ActivityVertices() {
		if v.ActivityID == "a" {
			a = v
		}
	}
	if a.LoopDepth != 0 {
		t.Errorf("non-loop activity should have depth 0: %+v", a)
	}
}

func TestFromTaskNestedLoops(t *testing.T) {
	tk := &task.Task{
		Name: "t", Concept: "C",
		Root: task.LoopNode(qos.Loop{Min: 1, Max: 2},
			task.LoopNode(qos.Loop{Min: 1, Max: 2}, mkAct("deep"))),
	}
	g, err := FromTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ActivityVertices()[0].LoopDepth; got != 2 {
		t.Errorf("nested loop depth = %d, want 2", got)
	}
}

func TestFromTaskRejectsInvalid(t *testing.T) {
	if _, err := FromTask(&task.Task{Name: "bad"}); err == nil {
		t.Error("invalid task should be rejected")
	}
}

func TestFromTaskCopiesData(t *testing.T) {
	a := &task.Activity{
		ID: "a", Concept: "C",
		Inputs:  []semantics.ConceptID{"In"},
		Outputs: []semantics.ConceptID{"Out"},
	}
	tk := &task.Task{Name: "t", Concept: "C", Root: task.NewActivity(a)}
	g, err := FromTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	v := g.ActivityVertices()[0]
	a.Inputs[0] = "Mutated"
	if v.Inputs[0] != "In" {
		t.Error("graph should copy activity data at the boundary")
	}
}

func TestGraphString(t *testing.T) {
	g := New()
	a := g.AddVertex(&Vertex{Kind: KindInitial})
	b := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: "x"})
	_ = g.AddEdge(a, b)
	s := g.String()
	if !strings.Contains(s, "⊤ -> x") {
		t.Errorf("String = %q", s)
	}
}

func TestVertexKindString(t *testing.T) {
	for k, want := range map[VertexKind]string{
		KindActivity: "activity", KindInitial: "initial", KindFinal: "final",
		VertexKind(9): "VertexKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestVertexLabel(t *testing.T) {
	if (&Vertex{Kind: KindInitial}).Label() != "⊤" {
		t.Error("initial label")
	}
	if (&Vertex{Kind: KindFinal}).Label() != "⊥" {
		t.Error("final label")
	}
	if (&Vertex{Kind: KindActivity, ActivityID: "a"}).Label() != "a" {
		t.Error("activity label")
	}
	if (&Vertex{Kind: KindActivity, ID: 7}).Label() != "v7" {
		t.Error("anonymous label")
	}
}
