package graph

import (
	"errors"
	"testing"

	"qasom/internal/semantics"
	"qasom/internal/task"
)

// lineGraph builds ⊤ → c1 → c2 → ... → ⊥ with the given concepts.
func lineGraph(t *testing.T, concepts ...semantics.ConceptID) *Graph {
	t.Helper()
	g := New()
	prev := g.AddVertex(&Vertex{Kind: KindInitial})
	for i, c := range concepts {
		v := g.AddVertex(&Vertex{Kind: KindActivity, ActivityID: string(c) + "_" + string(rune('a'+i)), Concept: c})
		if err := g.AddEdge(prev, v); err != nil {
			t.Fatal(err)
		}
		prev = v
	}
	fin := g.AddVertex(&Vertex{Kind: KindFinal})
	if err := g.AddEdge(prev, fin); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustMatch(t *testing.T, pattern, host *Graph, opts MatchOptions) *MatchResult {
	t.Helper()
	res, found, err := FindHomeomorphism(pattern, host, opts)
	if err != nil {
		t.Fatalf("FindHomeomorphism error: %v", err)
	}
	if !found {
		t.Fatalf("expected a match\npattern:\n%s\nhost:\n%s", pattern, host)
	}
	return res
}

func mustNotMatch(t *testing.T, pattern, host *Graph, opts MatchOptions) {
	t.Helper()
	_, found, err := FindHomeomorphism(pattern, host, opts)
	if err != nil {
		t.Fatalf("FindHomeomorphism error: %v", err)
	}
	if found {
		t.Fatalf("expected no match\npattern:\n%s\nhost:\n%s", pattern, host)
	}
}

func TestHomeomorphismIdentity(t *testing.T) {
	g := lineGraph(t, "A", "B", "C")
	res := mustMatch(t, g, lineGraph(t, "A", "B", "C"), MatchOptions{})
	if len(res.Mapping) != g.VertexCount() {
		t.Errorf("mapping covers %d vertices, want %d", len(res.Mapping), g.VertexCount())
	}
}

func TestHomeomorphismSubdivision(t *testing.T) {
	// Pattern A→B; host A→X→B: the pattern edge maps to a 2-edge path.
	pattern := lineGraph(t, "A", "B")
	host := lineGraph(t, "A", "X", "B")
	res := mustMatch(t, pattern, host, MatchOptions{})
	// Find the pattern edge between the A and B images and check its path
	// has one interior vertex.
	var foundPath bool
	for _, p := range res.Paths {
		if len(p) == 3 {
			foundPath = true
		}
	}
	if !foundPath {
		t.Errorf("expected a subdivided path, got %v", res.Paths)
	}
}

func TestHomeomorphismRespectsConcepts(t *testing.T) {
	pattern := lineGraph(t, "A", "B")
	host := lineGraph(t, "A", "Z") // Z does not match B
	mustNotMatch(t, pattern, host, MatchOptions{})
}

func TestHomeomorphismEmptyConceptMatchesAnything(t *testing.T) {
	pattern := lineGraph(t, "", "")
	host := lineGraph(t, "X", "Y", "Z")
	mustMatch(t, pattern, host, MatchOptions{})
}

func TestHomeomorphismSemanticMatching(t *testing.T) {
	o := semantics.Scenarios()
	// Pattern requires generic MediaSale; host offers CDSale (plugin).
	pattern := lineGraph(t, semantics.MediaSale)
	host := lineGraph(t, semantics.CDSale)
	mustMatch(t, pattern, host, MatchOptions{Ontology: o})
	// Without the ontology the same pair fails.
	mustNotMatch(t, pattern, host, MatchOptions{})
	// Subsume direction only with AllowSubsume.
	patternSpecific := lineGraph(t, semantics.CDSale)
	hostGeneric := lineGraph(t, semantics.MediaSale)
	mustNotMatch(t, patternSpecific, hostGeneric, MatchOptions{Ontology: o})
	mustMatch(t, patternSpecific, hostGeneric, MatchOptions{Ontology: o, AllowSubsume: true})
}

func TestHomeomorphismVertexDisjointness(t *testing.T) {
	// Pattern: ⊤→a, ⊤→b, a→⊥, b→⊥ (two parallel branches).
	// Host: a single chain ⊤→x→⊥ cannot host two disjoint branches.
	pt := &task.Task{Name: "p", Concept: "C", Root: task.Parallel(
		task.NewActivity(&task.Activity{ID: "a", Concept: "X"}),
		task.NewActivity(&task.Activity{ID: "b", Concept: "X"}),
	)}
	pattern, err := FromTask(pt)
	if err != nil {
		t.Fatal(err)
	}
	host := lineGraph(t, "X")
	mustNotMatch(t, pattern, host, MatchOptions{})

	// A host with two parallel X branches matches.
	ht := &task.Task{Name: "h", Concept: "C", Root: task.Parallel(
		task.NewActivity(&task.Activity{ID: "h1", Concept: "X"}),
		task.NewActivity(&task.Activity{ID: "h2", Concept: "X"}),
	)}
	host2, err := FromTask(ht)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMatch(t, pattern, host2, MatchOptions{})
	// Images must be distinct (injective).
	seen := map[VertexID]bool{}
	for _, h := range res.Mapping {
		if seen[h] {
			t.Error("mapping is not injective")
		}
		seen[h] = true
	}
}

func TestHomeomorphismPathsInternallyDisjoint(t *testing.T) {
	// Pattern: two branches a→c and b→c. Host has two candidate routes to
	// c but they share the interior vertex m — only one branch may use m,
	// so the other must use the direct edge.
	pattern := New()
	pi := pattern.AddVertex(&Vertex{Kind: KindInitial})
	pa := pattern.AddVertex(&Vertex{Kind: KindActivity, Concept: "A"})
	pb := pattern.AddVertex(&Vertex{Kind: KindActivity, Concept: "B"})
	pc := pattern.AddVertex(&Vertex{Kind: KindActivity, Concept: "C"})
	pf := pattern.AddVertex(&Vertex{Kind: KindFinal})
	for _, e := range []Edge{{pi, pa}, {pi, pb}, {pa, pc}, {pb, pc}, {pc, pf}} {
		if err := pattern.AddEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}

	host := New()
	hi := host.AddVertex(&Vertex{Kind: KindInitial})
	ha := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "A"})
	hb := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "B"})
	hm := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "M"})
	hc := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "C"})
	hf := host.AddVertex(&Vertex{Kind: KindFinal})
	for _, e := range []Edge{{hi, ha}, {hi, hb}, {ha, hm}, {hm, hc}, {hb, hm}, {hb, hc}, {hc, hf}} {
		if err := host.AddEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	res := mustMatch(t, pattern, host, MatchOptions{})
	// Count how many routed paths use hm as interior: must be ≤ 1.
	uses := 0
	for _, p := range res.Paths {
		for _, v := range p[1 : len(p)-1] {
			if v == hm {
				uses++
			}
		}
	}
	if uses > 1 {
		t.Errorf("interior vertex reused by %d paths", uses)
	}
}

func TestHomeomorphismPins(t *testing.T) {
	pattern := lineGraph(t, "A")
	host := New()
	hi := host.AddVertex(&Vertex{Kind: KindInitial})
	h1 := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "A", ActivityID: "first"})
	h2 := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "A", ActivityID: "second"})
	hf := host.AddVertex(&Vertex{Kind: KindFinal})
	for _, e := range []Edge{{hi, h1}, {hi, h2}, {h1, hf}, {h2, hf}} {
		if err := host.AddEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	pa := pattern.ActivityVertices()[0].ID

	// Pin the pattern activity onto the second host activity.
	res := mustMatch(t, pattern, host, MatchOptions{Pins: map[VertexID]VertexID{pa: h2}})
	if res.Mapping[pa] != h2 {
		t.Errorf("pin ignored: mapped to %d, want %d", res.Mapping[pa], h2)
	}
	// An impossible pin fails.
	mustNotMatch(t, pattern, host, MatchOptions{Pins: map[VertexID]VertexID{pa: hi}})
	// Unknown pin errors.
	if _, _, err := FindHomeomorphism(pattern, host, MatchOptions{Pins: map[VertexID]VertexID{99: h2}}); err == nil {
		t.Error("unknown pin should error")
	}
}

func TestHomeomorphismInitialFinalImplicitPins(t *testing.T) {
	pattern := lineGraph(t, "A")
	host := lineGraph(t, "A")
	res := mustMatch(t, pattern, host, MatchOptions{})
	if res.Mapping[pattern.Initial().ID] != host.Initial().ID {
		t.Error("initial should map to initial")
	}
	if res.Mapping[pattern.Final().ID] != host.Final().ID {
		t.Error("final should map to final")
	}
}

func TestHomeomorphismDataConstraints(t *testing.T) {
	// Pattern: A→B. Host: A→X→B where interior X requires an input that A
	// does not produce → data constraint kills the only path.
	build := func(xInput semantics.ConceptID) *Graph {
		g := New()
		gi := g.AddVertex(&Vertex{Kind: KindInitial})
		a := g.AddVertex(&Vertex{Kind: KindActivity, Concept: "A", Outputs: []semantics.ConceptID{"D1"}})
		x := g.AddVertex(&Vertex{Kind: KindActivity, Concept: "X", Inputs: []semantics.ConceptID{xInput}})
		b := g.AddVertex(&Vertex{Kind: KindActivity, Concept: "B"})
		gf := g.AddVertex(&Vertex{Kind: KindFinal})
		for _, e := range []Edge{{gi, a}, {a, x}, {x, b}, {b, gf}} {
			if err := g.AddEdge(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	pattern := lineGraph(t, "A", "B")
	okHost := build("D1")
	badHost := build("D2")
	mustMatch(t, pattern, okHost, MatchOptions{CheckData: true})
	mustNotMatch(t, pattern, badHost, MatchOptions{CheckData: true})
	// Without data constraints the bad host matches.
	mustMatch(t, pattern, badHost, MatchOptions{})
}

func TestPreVerify(t *testing.T) {
	small := lineGraph(t, "A")
	big := lineGraph(t, "A", "B", "C")

	if rep := PreVerify(big, small, MatchOptions{}); rep.OK {
		t.Error("pattern larger than host should fail preverify")
	}
	if rep := PreVerify(lineGraph(t, "Z"), big, MatchOptions{}); rep.OK {
		t.Error("unmatchable concept should fail preverify")
	}
	rep := PreVerify(small, big, MatchOptions{})
	if !rep.OK {
		t.Fatalf("preverify failed: %s", rep.Reason)
	}
	if len(rep.Candidates) != small.VertexCount() {
		t.Errorf("candidates for %d vertices, want %d", len(rep.Candidates), small.VertexCount())
	}
	if rep := PreVerify(New(), big, MatchOptions{}); rep.OK {
		t.Error("empty pattern should fail preverify")
	}
}

func TestPreVerifyBipartiteInfeasible(t *testing.T) {
	// Two pattern vertices both only matchable onto one host vertex.
	pattern := New()
	p1 := pattern.AddVertex(&Vertex{Kind: KindActivity, Concept: "A"})
	p2 := pattern.AddVertex(&Vertex{Kind: KindActivity, Concept: "A"})
	if err := pattern.AddEdge(p1, p2); err != nil {
		t.Fatal(err)
	}
	host := New()
	h1 := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "A"})
	h2 := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "Z"})
	h3 := host.AddVertex(&Vertex{Kind: KindActivity, Concept: "Z"})
	_ = host.AddEdge(h1, h2)
	_ = host.AddEdge(h2, h3)
	rep := PreVerify(pattern, host, MatchOptions{})
	if rep.OK {
		t.Error("bipartite-infeasible instance should fail preverify")
	}
}

func TestSkipPreVerify(t *testing.T) {
	pattern := lineGraph(t, "A", "B")
	host := lineGraph(t, "A", "X", "B")
	res, found, err := FindHomeomorphism(pattern, host, MatchOptions{SkipPreVerify: true})
	if err != nil || !found || res == nil {
		t.Fatalf("SkipPreVerify run failed: %v %v", found, err)
	}
	// Unmatchable still fails cleanly without preverify.
	_, found, err = FindHomeomorphism(lineGraph(t, "Z"), host, MatchOptions{SkipPreVerify: true})
	if err != nil || found {
		t.Errorf("unmatchable with SkipPreVerify = (%v, %v)", found, err)
	}
}

func TestHomeomorphismBudget(t *testing.T) {
	// A pattern with many interchangeable vertices against a large host
	// with a poisoned tail exhausts a tiny budget.
	mk := func(n int, tail semantics.ConceptID) *Graph {
		concepts := make([]semantics.ConceptID, n)
		for i := range concepts {
			concepts[i] = "X"
		}
		concepts[n-1] = tail
		return lineGraph(t, concepts...)
	}
	pattern := mk(8, "NEVER")
	host := mk(16, "X") // preverify passes per-vertex? NEVER has no candidate...
	// Give the pattern tail a concept present in the host so preverify
	// passes but ordering forces real search.
	pattern = mk(8, "X")
	host = mk(16, "X")
	_, found, err := FindHomeomorphism(pattern, host, MatchOptions{MaxSteps: 3})
	if err == nil && found {
		return // found within budget: acceptable on trivially easy instances
	}
	if err != nil && !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestHomeomorphismTaskToTaskAdaptationScenario(t *testing.T) {
	// The core behavioural-adaptation use case: the remaining user task
	// (pattern) matched against an alternative behaviour (host) that
	// splits one activity into two (finer granularity).
	o := semantics.Scenarios()
	remaining := &task.Task{
		Name: "rem", Concept: semantics.ShoppingService,
		Root: task.Sequence(
			task.NewActivity(&task.Activity{ID: "order", Concept: semantics.OrderItem}),
			task.NewActivity(&task.Activity{ID: "pay", Concept: semantics.PaymentService}),
		),
	}
	alternative := &task.Task{
		Name: "alt", Concept: semantics.ShoppingService,
		Root: task.Sequence(
			task.NewActivity(&task.Activity{ID: "bundle", Concept: semantics.BundleOrder}),
			task.NewActivity(&task.Activity{ID: "notify", Concept: semantics.NotifyService}),
			task.NewActivity(&task.Activity{ID: "mpay", Concept: semantics.MobilePayment}),
		),
	}
	pattern, err := FromTask(remaining)
	if err != nil {
		t.Fatal(err)
	}
	host, err := FromTask(alternative)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMatch(t, pattern, host, MatchOptions{Ontology: o})
	// order→bundle (plugin), pay→mpay (plugin), notify absorbed into a path.
	var orderImage, payImage VertexID
	for _, pv := range pattern.ActivityVertices() {
		switch pv.ActivityID {
		case "order":
			orderImage = res.Mapping[pv.ID]
		case "pay":
			payImage = res.Mapping[pv.ID]
		}
	}
	if host.Vertex(orderImage).ActivityID != "bundle" {
		t.Errorf("order mapped to %s, want bundle", host.Vertex(orderImage).ActivityID)
	}
	if host.Vertex(payImage).ActivityID != "mpay" {
		t.Errorf("pay mapped to %s, want mpay", host.Vertex(payImage).ActivityID)
	}
}

func BenchmarkHomeomorphismLine(b *testing.B) {
	concepts := make([]semantics.ConceptID, 10)
	for i := range concepts {
		concepts[i] = semantics.ConceptID(rune('A' + i))
	}
	hostConcepts := make([]semantics.ConceptID, 20)
	for i := range hostConcepts {
		hostConcepts[i] = "F"
	}
	for i, c := range concepts {
		hostConcepts[i*2] = c
	}
	tt := &testing.T{}
	pattern := lineGraph(tt, concepts...)
	host := lineGraph(tt, hostConcepts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := FindHomeomorphism(pattern, host, MatchOptions{}); err != nil || !found {
			b.Fatalf("match failed: %v %v", found, err)
		}
	}
}
