package graph

import (
	"errors"
	"fmt"
	"sort"

	"qasom/internal/semantics"
)

// ErrBudgetExhausted is returned when the homeomorphism search exceeds
// its backtracking budget without deciding the instance.
var ErrBudgetExhausted = errors.New("graph: homeomorphism search budget exhausted")

// MatchOptions configures the extended subgraph-homeomorphism search of
// §6.2. The zero value asks for exact concept matching, data-constraint
// checking off, and default budgets.
type MatchOptions struct {
	// Ontology enables semantic vertex matching (§6.2.1); nil restricts
	// concept matching to string equality.
	Ontology *semantics.Ontology
	// AllowSubsume also accepts host concepts that generalise the
	// pattern's (weaker guarantee, more matches).
	AllowSubsume bool
	// CheckData enables the data constraints of §6.2.2: vertices interior
	// to an edge path must have their inputs covered by the outputs of
	// their path predecessors.
	CheckData bool
	// Pins forces particular vertex mappings (§6.2.3) beyond the implicit
	// initial→initial and final→final pins.
	Pins map[VertexID]VertexID
	// AllowMerge permits non-injective activity mappings: several pattern
	// activities may map onto one host activity whose concept satisfies
	// all of them, with the pattern edges between co-mapped vertices
	// absorbed into the merged activity (empty paths). This models the
	// coarser-granularity behaviours of task classes ("merged
	// activities", Ch. I §5); initial/final vertices stay bijective.
	AllowMerge bool
	// SkipPreVerify disables the §6.1 preliminary verifications (kept for
	// the ablation benchmark).
	SkipPreVerify bool
	// MaxPathsPerEdge caps the alternative paths enumerated per pattern
	// edge; 0 means 64.
	MaxPathsPerEdge int
	// MaxPathLen caps path length in edges; 0 means the host vertex count.
	MaxPathLen int
	// MaxSteps bounds backtracking steps; 0 means 1_000_000.
	MaxSteps int
}

func (o MatchOptions) withDefaults(host *Graph) MatchOptions {
	if o.MaxPathsPerEdge <= 0 {
		o.MaxPathsPerEdge = 64
	}
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = host.VertexCount()
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1_000_000
	}
	return o
}

// MatchResult reports a found homeomorphism.
type MatchResult struct {
	// Mapping sends each pattern vertex to its host image.
	Mapping map[VertexID]VertexID
	// Paths sends each pattern edge to its host path (host vertex IDs,
	// endpoints included).
	Paths map[Edge][]VertexID
	// Steps counts backtracking steps spent.
	Steps int
}

// PreVerifyReport is the outcome of the §6.1 preliminary verifications.
type PreVerifyReport struct {
	OK     bool
	Reason string
	// Candidates holds, per pattern vertex, the admissible host vertices
	// (computed as a by-product and reused by the search).
	Candidates map[VertexID][]VertexID
}

// PreVerify runs the preliminary verifications of §6.1: size feasibility,
// per-vertex candidate non-emptiness (semantic label, vertex kind, degree
// bounds, pins) and a bipartite-matching feasibility test (a necessary
// condition: an injective vertex mapping must exist ignoring edges).
func PreVerify(pattern, host *Graph, opts MatchOptions) PreVerifyReport {
	if pattern.VertexCount() == 0 {
		return PreVerifyReport{OK: false, Reason: "empty pattern"}
	}
	// Size and edge-count bounds assume injective mappings; merging can
	// shrink the image arbitrarily, so they only apply without it.
	if !opts.AllowMerge {
		if pattern.VertexCount() > host.VertexCount() {
			return PreVerifyReport{OK: false, Reason: fmt.Sprintf(
				"pattern has %d vertices, host only %d", pattern.VertexCount(), host.VertexCount())}
		}
		if pattern.EdgeCount() > host.EdgeCount() {
			return PreVerifyReport{OK: false, Reason: fmt.Sprintf(
				"pattern has %d edges, host only %d", pattern.EdgeCount(), host.EdgeCount())}
		}
	}
	cands := make(map[VertexID][]VertexID, pattern.VertexCount())
	for _, pv := range pattern.Vertices() {
		var list []VertexID
		for _, hv := range host.Vertices() {
			if admissible(pv, hv, pattern, host, opts) {
				list = append(list, hv.ID)
			}
		}
		if len(list) == 0 {
			return PreVerifyReport{OK: false, Reason: fmt.Sprintf(
				"no host candidate for pattern vertex %s", pv.Label())}
		}
		cands[pv.ID] = list
	}
	if !opts.AllowMerge && !injectiveMappingExists(pattern, cands) {
		return PreVerifyReport{OK: false, Reason: "no injective vertex mapping exists (bipartite matching infeasible)"}
	}
	return PreVerifyReport{OK: true, Candidates: cands}
}

// admissible implements the per-vertex compatibility test: kind equality,
// pin consistency, semantic label matching and the degree bounds implied
// by vertex-disjoint edge paths (every pattern edge leaving u uses a
// distinct host edge leaving the image of u).
func admissible(pv, hv *Vertex, pattern, host *Graph, opts MatchOptions) bool {
	if pv.Kind != hv.Kind {
		return false
	}
	if pin, ok := opts.Pins[pv.ID]; ok && pin != hv.ID {
		return false
	}
	// Degree bounds hold only for injective mappings: with merging, the
	// edges of co-mapped vertices collapse, so no bound applies.
	if !opts.AllowMerge {
		if host.OutDegree(hv.ID) < pattern.OutDegree(pv.ID) {
			return false
		}
		if host.InDegree(hv.ID) < pattern.InDegree(pv.ID) {
			return false
		}
	}
	return conceptMatches(pv.Concept, hv.Concept, opts)
}

func conceptMatches(required, offered semantics.ConceptID, opts MatchOptions) bool {
	if required == "" {
		return true
	}
	if opts.Ontology == nil {
		return required == offered
	}
	switch opts.Ontology.Match(required, offered) {
	case semantics.MatchExact, semantics.MatchPlugin:
		return true
	case semantics.MatchSubsume:
		return opts.AllowSubsume
	default:
		return false
	}
}

// injectiveMappingExists runs Kuhn's augmenting-path bipartite matching
// over the candidate sets and checks the matching saturates the pattern.
func injectiveMappingExists(pattern *Graph, cands map[VertexID][]VertexID) bool {
	matchOfHost := make(map[VertexID]VertexID)
	var try func(p VertexID, visited map[VertexID]bool) bool
	try = func(p VertexID, visited map[VertexID]bool) bool {
		for _, h := range cands[p] {
			if visited[h] {
				continue
			}
			visited[h] = true
			prev, taken := matchOfHost[h]
			if !taken || try(prev, visited) {
				matchOfHost[h] = p
				return true
			}
		}
		return false
	}
	for _, pv := range pattern.Vertices() {
		if !try(pv.ID, make(map[VertexID]bool)) {
			return false
		}
	}
	return true
}

// FindHomeomorphism decides whether the pattern graph is homeomorphic to
// a subgraph of the host graph under the extended semantics of §6.2: an
// injective, semantically admissible vertex mapping such that every
// pattern edge maps to a host path, all paths pairwise internally
// vertex-disjoint and avoiding mapped vertices, optionally respecting
// data constraints. With AllowMerge the injectivity requirement is
// relaxed for activity vertices (coarser-granularity hosts). The
// implicit pins initial→initial and final→final always apply when both
// graphs carry such vertices.
//
// It returns the match when found; ErrBudgetExhausted when the search
// budget ran out before deciding.
func FindHomeomorphism(pattern, host *Graph, opts MatchOptions) (*MatchResult, bool, error) {
	opts = opts.withDefaults(host)
	opts.Pins = withImplicitPins(pattern, host, opts.Pins)
	for p, h := range opts.Pins {
		if pattern.Vertex(p) == nil || host.Vertex(h) == nil {
			return nil, false, fmt.Errorf("graph: pin (%d→%d) references unknown vertex", int(p), int(h))
		}
	}

	var cands map[VertexID][]VertexID
	if opts.SkipPreVerify {
		cands = make(map[VertexID][]VertexID, pattern.VertexCount())
		for _, pv := range pattern.Vertices() {
			for _, hv := range host.Vertices() {
				if admissible(pv, hv, pattern, host, opts) {
					cands[pv.ID] = append(cands[pv.ID], hv.ID)
				}
			}
			if len(cands[pv.ID]) == 0 {
				return nil, false, nil
			}
		}
	} else {
		rep := PreVerify(pattern, host, opts)
		if !rep.OK {
			return nil, false, nil
		}
		cands = rep.Candidates
	}

	s := &searcher{
		pattern:  pattern,
		host:     host,
		opts:     opts,
		cands:    cands,
		mapping:  make(map[VertexID]VertexID, pattern.VertexCount()),
		imageUse: make(map[VertexID]int, host.VertexCount()),
		pathUse:  make(map[VertexID]int, host.VertexCount()),
		paths:    make(map[Edge][]VertexID, pattern.EdgeCount()),
	}
	s.planOrder()
	found, err := s.solve(0)
	if err != nil {
		return nil, false, err
	}
	if !found {
		return nil, false, nil
	}
	return &MatchResult{Mapping: s.mapping, Paths: s.paths, Steps: s.steps}, true, nil
}

func withImplicitPins(pattern, host *Graph, pins map[VertexID]VertexID) map[VertexID]VertexID {
	out := make(map[VertexID]VertexID, len(pins)+2)
	for p, h := range pins {
		out[p] = h
	}
	if pi, hi := pattern.Initial(), host.Initial(); pi != nil && hi != nil {
		if _, done := out[pi.ID]; !done {
			out[pi.ID] = hi.ID
		}
	}
	if pf, hf := pattern.Final(), host.Final(); pf != nil && hf != nil {
		if _, done := out[pf.ID]; !done {
			out[pf.ID] = hf.ID
		}
	}
	return out
}

// searcher carries the backtracking state: the partial vertex mapping,
// the host-vertex usage table (mapped images and path interiors), and
// the per-edge routed paths.
type searcher struct {
	pattern *Graph
	host    *Graph
	opts    MatchOptions
	cands   map[VertexID][]VertexID

	order   []VertexID // pattern vertices in assignment order
	edgesAt [][]Edge   // pattern edges routable once order[i] is assigned

	mapping  map[VertexID]VertexID
	imageUse map[VertexID]int // host vertex → count of pattern images on it
	pathUse  map[VertexID]int // host vertex → count of path interiors through it
	paths    map[Edge][]VertexID
	steps    int
}

// planOrder fixes the assignment order: pinned vertices first, then by
// ascending candidate count (most constrained first), ties by ID. It
// also precomputes, per position, the pattern edges whose both endpoints
// are assigned once that position is filled.
func (s *searcher) planOrder() {
	s.order = make([]VertexID, 0, s.pattern.VertexCount())
	for _, v := range s.pattern.Vertices() {
		s.order = append(s.order, v.ID)
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		va, vb := s.order[a], s.order[b]
		_, pa := s.opts.Pins[va]
		_, pb := s.opts.Pins[vb]
		if pa != pb {
			return pa
		}
		ca, cb := len(s.cands[va]), len(s.cands[vb])
		if ca != cb {
			return ca < cb
		}
		return va < vb
	})
	pos := make(map[VertexID]int, len(s.order))
	for i, v := range s.order {
		pos[v] = i
	}
	s.edgesAt = make([][]Edge, len(s.order))
	for _, e := range s.pattern.Edges() {
		later := pos[e.From]
		if pos[e.To] > later {
			later = pos[e.To]
		}
		s.edgesAt[later] = append(s.edgesAt[later], e)
	}
}

func (s *searcher) solve(i int) (bool, error) {
	if i == len(s.order) {
		return true, nil
	}
	pv := s.order[i]
	for _, hv := range s.cands[pv] {
		if s.pathUse[hv] > 0 {
			continue // a routed path already runs through this vertex
		}
		if s.imageUse[hv] > 0 {
			// Sharing an image is merging: only for activity vertices and
			// only when the options allow it (candidate admissibility
			// already checked the concepts).
			if !s.opts.AllowMerge || s.host.Vertex(hv).Kind != KindActivity ||
				s.pattern.Vertex(pv).Kind != KindActivity {
				continue
			}
		}
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return false, ErrBudgetExhausted
		}
		s.mapping[pv] = hv
		s.imageUse[hv]++
		ok, err := s.routeEdges(i, 0)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		s.imageUse[hv]--
		delete(s.mapping, pv)
	}
	return false, nil
}

// routeEdges routes the j-th pending edge of position i, then recurses to
// the next edge and finally to the next vertex position. Each edge tries
// every admissible host path; on failure the path is released and the
// next alternative tried.
func (s *searcher) routeEdges(i, j int) (bool, error) {
	if j == len(s.edgesAt[i]) {
		return s.solve(i + 1)
	}
	e := s.edgesAt[i][j]
	from, to := s.mapping[e.From], s.mapping[e.To]
	if from == to {
		// Both endpoints merged onto one activity: the edge is internal
		// to it and maps to the empty path.
		s.paths[e] = []VertexID{from}
		ok, err := s.routeEdges(i, j+1)
		if err != nil || ok {
			return ok, err
		}
		delete(s.paths, e)
		return false, nil
	}
	paths := s.enumeratePaths(from, to)
	for _, p := range paths {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return false, ErrBudgetExhausted
		}
		s.reservePath(e, p)
		ok, err := s.routeEdges(i, j+1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		s.releasePath(e, p)
	}
	return false, nil
}

func (s *searcher) reservePath(e Edge, p []VertexID) {
	s.paths[e] = p
	for _, v := range p[1 : len(p)-1] {
		s.pathUse[v]++
	}
}

func (s *searcher) releasePath(e Edge, p []VertexID) {
	delete(s.paths, e)
	for _, v := range p[1 : len(p)-1] {
		s.pathUse[v]--
	}
}

// enumeratePaths lists simple host paths from a to b whose interior
// avoids every used host vertex, shortest first, capped by the options.
// Paths failing the data constraints are dropped.
func (s *searcher) enumeratePaths(a, b VertexID) [][]VertexID {
	var out [][]VertexID
	prefix := []VertexID{a}
	onPath := map[VertexID]bool{a: true}
	var dfs func(cur VertexID)
	dfs = func(cur VertexID) {
		if len(out) >= s.opts.MaxPathsPerEdge {
			return
		}
		if len(prefix)-1 >= s.opts.MaxPathLen {
			return
		}
		for _, next := range s.host.OutNeighbors(cur) {
			if len(out) >= s.opts.MaxPathsPerEdge {
				return
			}
			if next == b {
				p := make([]VertexID, len(prefix)+1)
				copy(p, prefix)
				p[len(prefix)] = b
				if !s.opts.CheckData || s.pathDataOK(p) {
					out = append(out, p)
				}
				continue
			}
			// Interior vertices must be free: neither the image of a
			// mapped vertex nor interior to another path.
			if onPath[next] || s.imageUse[next] > 0 || s.pathUse[next] > 0 {
				continue
			}
			onPath[next] = true
			prefix = append(prefix, next)
			dfs(next)
			prefix = prefix[:len(prefix)-1]
			delete(onPath, next)
		}
	}
	dfs(a)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

// pathDataOK checks the data constraints of §6.2.2 on one routed path:
// walking the path, every interior vertex must have each of its inputs
// covered by an output of some earlier vertex on the path (semantic
// coverage when an ontology is configured).
func (s *searcher) pathDataOK(p []VertexID) bool {
	available := make([]semantics.ConceptID, 0, 8)
	available = append(available, s.host.Vertex(p[0]).Outputs...)
	for idx := 1; idx < len(p)-1; idx++ {
		v := s.host.Vertex(p[idx])
		for _, in := range v.Inputs {
			if !covered(in, available, s.opts) {
				return false
			}
		}
		available = append(available, v.Outputs...)
	}
	return true
}

func covered(required semantics.ConceptID, available []semantics.ConceptID, opts MatchOptions) bool {
	for _, offered := range available {
		if conceptMatches(required, offered, opts) {
			return true
		}
	}
	return false
}
