package graph

import (
	"testing"

	"qasom/internal/workload"
)

// TestFromTaskInvariantsRandomized checks structural invariants of the
// task→graph transformation over randomized task shapes: exactly one
// initial and one final vertex, vertex count = activities + 2, acyclic,
// every activity vertex on a path initial→final.
func TestFromTaskInvariantsRandomized(t *testing.T) {
	shapes := []workload.TaskShape{workload.ShapeLinear, workload.ShapeMixed, workload.ShapeChoiceHeavy}
	for seed := int64(1); seed <= 6; seed++ {
		g := workload.NewGenerator(seed)
		for _, shape := range shapes {
			for _, n := range []int{1, 3, 7, 15} {
				tk := g.Task("T", n, shape)
				bg, err := FromTask(tk)
				if err != nil {
					t.Fatalf("seed %d shape %d n %d: %v", seed, shape, n, err)
				}
				if bg.VertexCount() != n+2 {
					t.Fatalf("vertex count %d, want %d", bg.VertexCount(), n+2)
				}
				initials, finals := 0, 0
				for _, v := range bg.Vertices() {
					switch v.Kind {
					case KindInitial:
						initials++
					case KindFinal:
						finals++
					}
				}
				if initials != 1 || finals != 1 {
					t.Fatalf("initial/final counts = %d/%d", initials, finals)
				}
				if _, acyclic := bg.TopoSort(); !acyclic {
					t.Fatal("behavioural graph must be acyclic")
				}
				init, fin := bg.Initial().ID, bg.Final().ID
				for _, v := range bg.ActivityVertices() {
					if !bg.Reachable(init, v.ID) {
						t.Fatalf("activity %s unreachable from initial", v.ActivityID)
					}
					if !bg.Reachable(v.ID, fin) {
						t.Fatalf("final unreachable from activity %s", v.ActivityID)
					}
				}
				// Every graph is homeomorphic to itself under the identity.
				res, found, err := FindHomeomorphism(bg, bg, MatchOptions{})
				if err != nil || !found {
					t.Fatalf("self-match failed: %v %v", found, err)
				}
				for pv, hv := range res.Mapping {
					pvx, hvx := bg.Vertex(pv), bg.Vertex(hv)
					if pvx.Concept != hvx.Concept {
						t.Fatal("self-match mapped across concepts")
					}
				}
			}
		}
	}
}
