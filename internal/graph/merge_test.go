package graph

import (
	"testing"

	"qasom/internal/semantics"
	"qasom/internal/task"
)

// TestMergeMapping covers the AllowMerge extension: a fine-grained
// remaining task embeds into a coarser behaviour whose single activity
// realises several remaining activities.
func TestMergeMapping(t *testing.T) {
	o := semantics.Scenarios()
	// Pattern: ⊤ → book(BookSale) → dvd(DVDSale) → pay(Payment) → ⊥.
	pattern := lineGraph(t, semantics.BookSale, semantics.DVDSale, semantics.PaymentService)
	// Host: ⊤ → kiosk(Shopping) → mpay(MobilePayment) → ⊥ — the kiosk is a
	// one-stop shop that must absorb both sale activities.
	host := lineGraph(t, semantics.ShoppingService, semantics.MobilePayment)

	// Without merging the 5-vertex pattern cannot embed in 4 vertices.
	_, found, err := FindHomeomorphism(pattern, host, MatchOptions{Ontology: o, AllowSubsume: true})
	if err != nil || found {
		t.Fatalf("injective match should fail: %v %v", found, err)
	}

	res, found, err := FindHomeomorphism(pattern, host, MatchOptions{
		Ontology: o, AllowSubsume: true, AllowMerge: true,
	})
	if err != nil || !found {
		t.Fatalf("merge match failed: %v %v", found, err)
	}
	// Both sale activities map onto the kiosk; pay maps onto mpay.
	var kiosk, mpay VertexID
	for _, hv := range host.ActivityVertices() {
		if hv.Concept == semantics.ShoppingService {
			kiosk = hv.ID
		} else {
			mpay = hv.ID
		}
	}
	images := map[semantics.ConceptID]VertexID{}
	for _, pv := range pattern.ActivityVertices() {
		images[pv.Concept] = res.Mapping[pv.ID]
	}
	if images[semantics.BookSale] != kiosk || images[semantics.DVDSale] != kiosk {
		t.Errorf("sale activities should merge onto the kiosk: %v", images)
	}
	if images[semantics.PaymentService] != mpay {
		t.Errorf("pay should map to mpay: %v", images)
	}
	// The book→dvd edge collapsed into the merged activity.
	merged := 0
	for _, p := range res.Paths {
		if len(p) == 1 {
			merged++
		}
	}
	if merged == 0 {
		t.Error("expected at least one collapsed (empty-path) edge")
	}
}

func TestMergeRequiresConceptCompatibility(t *testing.T) {
	o := semantics.Scenarios()
	// The host activity is a BookSale specialist: it cannot absorb the
	// DVD purchase even with merging enabled.
	pattern := lineGraph(t, semantics.BookSale, semantics.DVDSale)
	host := lineGraph(t, semantics.BookSale)
	_, found, err := FindHomeomorphism(pattern, host, MatchOptions{
		Ontology: o, AllowMerge: true,
	})
	if err != nil || found {
		t.Errorf("incompatible merge should fail: %v %v", found, err)
	}
}

func TestMergeInitialFinalStayBijective(t *testing.T) {
	// Initial/final vertices are pinned 1:1; merging applies to activity
	// vertices only — the implicit pins already force this, and a direct
	// self-merge attempt must not be possible.
	o := semantics.Scenarios()
	pattern := lineGraph(t, semantics.BookSale, semantics.DVDSale)
	host := lineGraph(t, semantics.ShoppingService)
	res, found, err := FindHomeomorphism(pattern, host, MatchOptions{
		Ontology: o, AllowSubsume: true, AllowMerge: true,
	})
	if err != nil || !found {
		t.Fatalf("merge match failed: %v %v", found, err)
	}
	if res.Mapping[pattern.Initial().ID] != host.Initial().ID {
		t.Error("initial must map to initial")
	}
	if res.Mapping[pattern.Final().ID] != host.Final().ID {
		t.Error("final must map to final")
	}
}

func TestMergeAdaptationScenario(t *testing.T) {
	// End-to-end through FromTask: remaining seq(book, dvd, pay) adapts
	// onto the bundle behaviour seq(kiosk, notify, mpay).
	o := semantics.Scenarios()
	remaining := &task.Task{Name: "rem", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "book", Concept: semantics.BookSale}),
		task.NewActivity(&task.Activity{ID: "dvd", Concept: semantics.DVDSale}),
		task.NewActivity(&task.Activity{ID: "pay", Concept: semantics.PaymentService}),
	)}
	alt := &task.Task{Name: "alt", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "kiosk", Concept: semantics.ShoppingService}),
		task.NewActivity(&task.Activity{ID: "notify", Concept: semantics.NotifyService}),
		task.NewActivity(&task.Activity{ID: "mpay", Concept: semantics.MobilePayment}),
	)}
	pattern, err := FromTask(remaining)
	if err != nil {
		t.Fatal(err)
	}
	host, err := FromTask(alt)
	if err != nil {
		t.Fatal(err)
	}
	res, found, err := FindHomeomorphism(pattern, host, MatchOptions{
		Ontology: o, AllowSubsume: true, AllowMerge: true,
	})
	if err != nil || !found {
		t.Fatalf("adaptation merge failed: %v %v", found, err)
	}
	// book and dvd co-map on the kiosk.
	byID := map[string]VertexID{}
	for _, pv := range pattern.ActivityVertices() {
		byID[pv.ActivityID] = res.Mapping[pv.ID]
	}
	if byID["book"] != byID["dvd"] {
		t.Errorf("book and dvd should merge: %v", byID)
	}
	if host.Vertex(byID["pay"]).ActivityID != "mpay" {
		t.Errorf("pay should land on mpay, got %s", host.Vertex(byID["pay"]).ActivityID)
	}
}
