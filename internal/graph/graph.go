// Package graph implements the behavioural-graph layer of QASOM's
// adaptation framework (Chapter V): directed labelled graphs, the
// transformation from user tasks to behavioural graphs (including the
// loop simplification of Fig. V.4), the preliminary verifications of
// §6.1, and the extended vertex-disjoint subgraph-homeomorphism
// determination of §6.2 with semantic vertex matching, data constraints
// and pinned vertex mappings.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"qasom/internal/semantics"
)

// VertexID identifies a vertex within one graph.
type VertexID int

// VertexKind distinguishes structural vertices from activity vertices.
type VertexKind int

// Vertex kinds.
const (
	// KindActivity is a vertex carrying an abstract activity.
	KindActivity VertexKind = iota + 1
	// KindInitial is the unique source vertex of a behavioural graph.
	KindInitial
	// KindFinal is the unique sink vertex of a behavioural graph.
	KindFinal
)

// String returns the conventional kind name.
func (k VertexKind) String() string {
	switch k {
	case KindActivity:
		return "activity"
	case KindInitial:
		return "initial"
	case KindFinal:
		return "final"
	default:
		return fmt.Sprintf("VertexKind(%d)", int(k))
	}
}

// Vertex is one node of a behavioural graph.
type Vertex struct {
	// ID is the vertex identifier within its graph.
	ID VertexID
	// Kind distinguishes initial/final markers from activities.
	Kind VertexKind
	// ActivityID is the originating task activity (activities only).
	ActivityID string
	// Concept is the functional capability label used for semantic
	// vertex matching.
	Concept semantics.ConceptID
	// Inputs and Outputs are the data concepts consumed and produced;
	// they drive the data constraints of §6.2.2.
	Inputs  []semantics.ConceptID
	Outputs []semantics.ConceptID
	// LoopDepth counts how many simplified loops enclose the vertex
	// (Fig. V.4 annotation).
	LoopDepth int
}

// Label returns a printable identity for the vertex.
func (v *Vertex) Label() string {
	switch v.Kind {
	case KindInitial:
		return "⊤"
	case KindFinal:
		return "⊥"
	default:
		if v.ActivityID != "" {
			return v.ActivityID
		}
		return fmt.Sprintf("v%d", int(v.ID))
	}
}

// Edge is a directed edge between two vertices of the same graph.
type Edge struct {
	From, To VertexID
}

// Graph is a simple directed graph (no parallel edges, no self-loops)
// with labelled vertices. The zero value is an empty graph ready for use.
// Graph is not safe for concurrent mutation.
type Graph struct {
	vertices []*Vertex
	out      map[VertexID][]VertexID
	in       map[VertexID][]VertexID
	edges    int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[VertexID][]VertexID),
		in:  make(map[VertexID][]VertexID),
	}
}

// AddVertex appends a vertex and returns its assigned ID. The caller's
// ID field is overwritten.
func (g *Graph) AddVertex(v *Vertex) VertexID {
	if g.out == nil {
		g.out = make(map[VertexID][]VertexID)
		g.in = make(map[VertexID][]VertexID)
	}
	id := VertexID(len(g.vertices))
	v.ID = id
	g.vertices = append(g.vertices, v)
	return id
}

// AddEdge inserts the directed edge u→v, rejecting self-loops, unknown
// endpoints and duplicates (duplicates are ignored silently: the
// transformation from tasks naturally produces some).
func (g *Graph) AddEdge(u, v VertexID) error {
	if !g.has(u) || !g.has(v) {
		return fmt.Errorf("graph: edge (%d,%d) references unknown vertex", int(u), int(v))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", int(u))
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edges++
	return nil
}

func (g *Graph) has(id VertexID) bool {
	return id >= 0 && int(id) < len(g.vertices)
}

// HasEdge reports whether the edge u→v exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Vertex returns the vertex with the given ID, or nil.
func (g *Graph) Vertex(id VertexID) *Vertex {
	if !g.has(id) {
		return nil
	}
	return g.vertices[id]
}

// VertexCount returns the number of vertices.
func (g *Graph) VertexCount() int { return len(g.vertices) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.edges }

// Vertices returns the vertices in ID order. The slice is shared; do not
// mutate it.
func (g *Graph) Vertices() []*Vertex { return g.vertices }

// Edges returns all edges sorted by (From, To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.vertices {
		for _, v := range g.out[VertexID(u)] {
			out = append(out, Edge{VertexID(u), v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// OutNeighbors returns the successors of u. The slice is shared; do not
// mutate it.
func (g *Graph) OutNeighbors(u VertexID) []VertexID { return g.out[u] }

// InNeighbors returns the predecessors of u. The slice is shared; do not
// mutate it.
func (g *Graph) InNeighbors(u VertexID) []VertexID { return g.in[u] }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u VertexID) int { return len(g.out[u]) }

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u VertexID) int { return len(g.in[u]) }

// Initial returns the first vertex of kind KindInitial, or nil.
func (g *Graph) Initial() *Vertex { return g.firstOfKind(KindInitial) }

// Final returns the first vertex of kind KindFinal, or nil.
func (g *Graph) Final() *Vertex { return g.firstOfKind(KindFinal) }

func (g *Graph) firstOfKind(k VertexKind) *Vertex {
	for _, v := range g.vertices {
		if v.Kind == k {
			return v
		}
	}
	return nil
}

// ActivityVertices returns the activity vertices in ID order.
func (g *Graph) ActivityVertices() []*Vertex {
	var out []*Vertex
	for _, v := range g.vertices {
		if v.Kind == KindActivity {
			out = append(out, v)
		}
	}
	return out
}

// TopoSort returns a topological order of the vertices and reports
// whether the graph is acyclic.
func (g *Graph) TopoSort() ([]VertexID, bool) {
	indeg := make([]int, len(g.vertices))
	for u := range g.vertices {
		for range g.in[VertexID(u)] {
			indeg[u]++
		}
	}
	queue := make([]VertexID, 0, len(g.vertices))
	for u := range g.vertices {
		if indeg[u] == 0 {
			queue = append(queue, VertexID(u))
		}
	}
	order := make([]VertexID, 0, len(g.vertices))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order, len(order) == len(g.vertices)
}

// Reachable reports whether v is reachable from u (u is reachable from
// itself).
func (g *Graph) Reachable(u, v VertexID) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(g.vertices))
	stack := []VertexID{u}
	seen[u] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.out[cur] {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// String renders the graph as "label -> label" lines in edge order, for
// debugging and test failure messages.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(%d vertices, %d edges)\n", g.VertexCount(), g.EdgeCount())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -> %s\n", g.vertices[e.From].Label(), g.vertices[e.To].Label())
	}
	return b.String()
}
