package adapt

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"qasom/internal/core"
	"qasom/internal/exec"
	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func stdPS() *qos.PropertySet { return qos.StandardSet() }

func offers(rt, price, avail, rel, tput float64) []registry.QoSOffer {
	return []registry.QoSOffer{
		{Property: semantics.ResponseTime, Value: rt},
		{Property: semantics.Price, Value: price},
		{Property: semantics.Availability, Value: avail},
		{Property: semantics.Reliability, Value: rel},
		{Property: semantics.Throughput, Value: tput},
	}
}

// publish registers n services for a concept, rt split around 50ms.
func publish(t *testing.T, reg *registry.Registry, concept semantics.ConceptID, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		d := registry.Description{
			ID:      registry.ServiceID(fmt.Sprintf("%s-%d", prefix, i)),
			Concept: concept,
			Offers:  offers(40+float64(5*i), 5, 0.95, 0.9, 40),
		}
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
}

// shoppingBehaviours builds the task class used across the tests:
//
//	b1 = seq(browse, order, pay)
//	b2 = seq(par(seq(bundle, mpay), promo)) — a different granularity
func shoppingBehaviours() *task.Class {
	b1 := &task.Task{Name: "b1", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "browse", Concept: semantics.BrowseCatalog}),
		task.NewActivity(&task.Activity{ID: "order", Concept: semantics.OrderItem}),
		task.NewActivity(&task.Activity{ID: "pay", Concept: semantics.PaymentService}),
	)}
	b2 := &task.Task{Name: "b2", Concept: semantics.ShoppingService, Root: task.Parallel(
		task.Sequence(
			task.NewActivity(&task.Activity{ID: "bundle", Concept: semantics.BundleOrder}),
			task.NewActivity(&task.Activity{ID: "mpay", Concept: semantics.MobilePayment}),
		),
		task.NewActivity(&task.Activity{ID: "promo", Concept: semantics.NotifyService}),
	)}
	return &task.Class{Name: "shopping", Concept: semantics.ShoppingService, Behaviours: []*task.Task{b1, b2}}
}

// fixture wires registry, selector, runtime and manager for behaviour b1.
func fixture(t *testing.T) (*Manager, *Runtime, *registry.Registry) {
	t.Helper()
	onto := semantics.PervasiveWithScenarios()
	reg := registry.New(onto)
	publish(t, reg, semantics.BrowseCatalog, "browse", 4)
	publish(t, reg, semantics.OrderItem, "order", 4)
	publish(t, reg, semantics.CardPayment, "pay", 4)
	publish(t, reg, semantics.BundleOrder, "bundle", 4)
	publish(t, reg, semantics.MobilePayment, "mpay", 4)
	publish(t, reg, semantics.NotifyService, "promo", 4)

	class := shoppingBehaviours()
	repo := task.NewRepository(onto)
	if err := repo.Register(class); err != nil {
		t.Fatal(err)
	}

	req := &core.Request{
		Task:        class.Behaviours[0],
		Properties:  stdPS(),
		Constraints: qos.Constraints{{Property: "responseTime", Bound: 400}},
	}
	cands := make(map[string][]registry.Candidate)
	for _, a := range req.Task.Activities() {
		cands[a.ID] = reg.CandidatesForActivity(a, req.Properties)
		if len(cands[a.ID]) == 0 {
			t.Fatalf("no candidates for %s", a.ID)
		}
	}
	sel := core.NewSelector(core.Options{})
	res, err := sel.Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("fixture selection should be feasible")
	}
	rt := NewRuntime(req, res)
	m := &Manager{Registry: reg, Repo: repo, Selector: sel}
	return m, rt, reg
}

func TestRuntimeBindAndProgress(t *testing.T) {
	_, rt, _ := fixture(t)
	browse := rt.Req.Task.ActivityByID("browse")
	c, err := rt.Bind(browse)
	if err != nil || c.Service.ID == "" {
		t.Fatalf("Bind: %v %v", c, err)
	}
	if _, err := rt.Bind(&task.Activity{ID: "ghost"}); err == nil {
		t.Error("binding unknown activity should error")
	}
	if rt.Completed("browse") {
		t.Error("browse should not be completed yet")
	}
	rt.MarkCompleted("browse", qos.Vector{80, 5, 0.95, 0.9, 40})
	if !rt.Completed("browse") || rt.CompletedCount() != 1 {
		t.Error("completion not tracked")
	}
	consumed := rt.Consumed()
	if consumed[0] != 80 {
		t.Errorf("consumed rt = %g, want 80", consumed[0])
	}
}

func TestSubstituteHappyPath(t *testing.T) {
	m, rt, _ := fixture(t)
	orig := rt.Result().Assignment["order"]
	sub, err := m.Substitute(rt, "order", nil)
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if sub.Service.ID == orig.Service.ID {
		t.Error("substitute should differ from the original")
	}
	if rt.Result().Assignment["order"].Service.ID != sub.Service.ID {
		t.Error("assignment not updated")
	}
	if rt.Substitutions() != 1 {
		t.Error("substitution not counted")
	}
	// The displaced service is kept as a later alternate.
	found := false
	for _, alt := range rt.Result().Alternates["order"] {
		if alt.Service.ID == orig.Service.ID {
			found = true
		}
	}
	if !found {
		t.Error("displaced service should rejoin the alternates")
	}
}

func TestSubstituteSkipsWithdrawnAndExcluded(t *testing.T) {
	m, rt, reg := fixture(t)
	alts := rt.Result().Alternates["order"]
	if len(alts) < 2 {
		t.Fatalf("need ≥2 alternates, have %d", len(alts))
	}
	// Withdraw the first alternate; exclude the second.
	reg.Withdraw(alts[0].Service.ID)
	exclude := map[registry.ServiceID]bool{alts[1].Service.ID: true}
	sub, err := m.Substitute(rt, "order", exclude)
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if sub.Service.ID == alts[0].Service.ID || sub.Service.ID == alts[1].Service.ID {
		t.Errorf("substitute %s should skip withdrawn and excluded", sub.Service.ID)
	}
}

func TestSubstituteSkipsUnhealthy(t *testing.T) {
	m, rt, _ := fixture(t)
	mon := monitor.New(stdPS(), monitor.Options{})
	m.Monitor = mon
	alts := rt.Result().Alternates["order"]
	// First alternate observed failing constantly.
	for i := 0; i < 5; i++ {
		if err := mon.Report(monitor.Observation{
			Service: alts[0].Service.ID, Vector: stdPS().NewVector(), Success: false,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := m.Substitute(rt, "order", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Service.ID == alts[0].Service.ID {
		t.Error("unhealthy alternate should be skipped")
	}
}

func TestSubstituteExhaustion(t *testing.T) {
	m, rt, _ := fixture(t)
	exclude := map[registry.ServiceID]bool{}
	for _, alt := range rt.Result().Alternates["order"] {
		exclude[alt.Service.ID] = true
	}
	_, err := m.Substitute(rt, "order", exclude)
	if !errors.Is(err, ErrNoSubstitute) {
		t.Errorf("expected ErrNoSubstitute, got %v", err)
	}
}

// failingInvoker fails a fixed set of services, succeeds otherwise.
type failingInvoker struct {
	dead map[registry.ServiceID]bool
}

func (f *failingInvoker) Invoke(_ context.Context, svc registry.ServiceID, _ *task.Activity) (exec.InvokeResult, error) {
	ok := !f.dead[svc]
	return exec.InvokeResult{Measured: qos.Vector{50, 5, 0.95, 0.9, 40}, Success: ok}, nil
}

func TestFailureHandlerDrivesSubstitution(t *testing.T) {
	m, rt, _ := fixture(t)
	dead := map[registry.ServiceID]bool{rt.Result().Assignment["order"].Service.ID: true}
	e := &exec.Executor{
		Invoker:    &failingInvoker{dead: dead},
		Binder:     rt,
		OnFailure:  m.FailureHandler(rt),
		OnComplete: m.CompletionHook(rt),
	}
	trace, err := e.Run(context.Background(), rt.Req.Task)
	if err != nil {
		t.Fatalf("run with substitution: %v", err)
	}
	if trace.Substitutions() == 0 {
		t.Error("substitution should have occurred")
	}
	if rt.CompletedCount() != 3 {
		t.Errorf("completed = %d, want 3", rt.CompletedCount())
	}
}

func TestResidualConstraints(t *testing.T) {
	ps := stdPS()
	cs := qos.Constraints{
		{Property: "responseTime", Bound: 300},
		{Property: "price", Bound: 20},
		{Property: "availability", Bound: 0.8},
		{Property: "throughput", Bound: 30},
	}
	consumed := qos.Vector{120, 8, 0.9, 0, 45}
	res := ResidualConstraints(ps, cs, consumed)
	want := map[string]float64{
		"responseTime": 180,       // 300 − 120
		"price":        12,        // 20 − 8
		"availability": 0.8 / 0.9, // divided
		"throughput":   30,        // bottleneck unchanged
	}
	for _, c := range res {
		if w, ok := want[c.Property]; ok {
			if diff := c.Bound - w; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s residual = %g, want %g", c.Property, c.Bound, w)
			}
		}
	}
	// Over-consumption floors at zero.
	res = ResidualConstraints(ps, qos.Constraints{{Property: "responseTime", Bound: 100}}, qos.Vector{500, 0, 1, 1, 1})
	if res[0].Bound != 0 {
		t.Errorf("over-consumed bound = %g, want 0", res[0].Bound)
	}
	// Probability bound caps at 1.
	res = ResidualConstraints(ps, qos.Constraints{{Property: "availability", Bound: 0.9}}, qos.Vector{0, 0, 0.5, 1, 1})
	if res[0].Bound != 1 {
		t.Errorf("probability residual = %g, want capped 1", res[0].Bound)
	}
}

func TestAdaptBehaviourSwitchesToAlternative(t *testing.T) {
	m, rt, _ := fixture(t)
	// browse finished; order/pay remain but (say) no substitutes help.
	rt.MarkCompleted("browse", qos.Vector{80, 5, 0.95, 0.9, 40})

	plan, err := m.AdaptBehaviour(rt)
	if err != nil {
		t.Fatalf("AdaptBehaviour: %v", err)
	}
	if plan.Alternative.Name != "b2" {
		t.Fatalf("alternative = %s, want b2", plan.Alternative.Name)
	}
	// The matched part is bundle+mpay; promo is off every matched path
	// and must be pruned from the new task.
	ids := plan.NewTask.ActivityIDs()
	if len(ids) != 2 || ids[0] != "bundle" || ids[1] != "mpay" {
		t.Fatalf("new task activities = %v, want [bundle mpay]", ids)
	}
	if !plan.Selection.Feasible {
		t.Error("re-selection should be feasible under residual constraints")
	}
	// Residual responseTime bound = 400 − 80.
	var resRT float64
	for _, c := range plan.Residual {
		if c.Property == "responseTime" {
			resRT = c.Bound
		}
	}
	if resRT != 320 {
		t.Errorf("residual rt bound = %g, want 320", resRT)
	}
	// Runtime switched: behaviour replaced, promo marked completed.
	if rt.Behaviour.Name != "b2" {
		t.Errorf("runtime behaviour = %s, want b2", rt.Behaviour.Name)
	}
	if !rt.Completed("promo") {
		t.Error("unscheduled activity promo should be marked completed")
	}
	if rt.Completed("bundle") {
		t.Error("bundle should be pending")
	}
	// The new assignment binds the new activities.
	if _, err := rt.Bind(plan.NewTask.ActivityByID("bundle")); err != nil {
		t.Errorf("bind after switch: %v", err)
	}
}

func TestAdaptBehaviourFreshStart(t *testing.T) {
	// Nothing completed: the class behaviours are equivalent by
	// definition, so the alternative replaces the task wholesale without
	// homeomorphism matching (b2 even has fewer activities than the
	// remaining b1 — unembeddable, but irrelevant on a fresh start).
	m, rt, _ := fixture(t)
	plan, err := m.AdaptBehaviour(rt)
	if err != nil {
		t.Fatalf("fresh-start AdaptBehaviour: %v", err)
	}
	if plan.Alternative.Name != "b2" {
		t.Errorf("alternative = %s", plan.Alternative.Name)
	}
	if plan.NewTask.Size() != plan.Alternative.Size() {
		t.Errorf("fresh start should run the whole alternative: %d vs %d",
			plan.NewTask.Size(), plan.Alternative.Size())
	}
	if plan.MatchSteps != 0 {
		t.Errorf("fresh start should skip matching, steps = %d", plan.MatchSteps)
	}
	if rt.Behaviour.Name != "b2" {
		t.Errorf("runtime behaviour = %s", rt.Behaviour.Name)
	}
}

func TestAdaptBehaviourNothingRemaining(t *testing.T) {
	m, rt, _ := fixture(t)
	for _, id := range []string{"browse", "order", "pay"} {
		rt.MarkCompleted(id, nil)
	}
	if _, err := m.AdaptBehaviour(rt); err == nil {
		t.Error("completed task should not adapt")
	}
}

func TestAdaptBehaviourNoClass(t *testing.T) {
	m, rt, _ := fixture(t)
	m.Repo = task.NewRepository(nil) // empty repository
	rt.MarkCompleted("browse", nil)
	if _, err := m.AdaptBehaviour(rt); err == nil {
		t.Error("missing task class should error")
	}
}

func TestAdaptBehaviourNoServicesForAlternative(t *testing.T) {
	m, rt, reg := fixture(t)
	rt.MarkCompleted("browse", nil)
	// Remove all bundle services: the only alternative cannot be staffed.
	for _, d := range reg.All() {
		if d.Concept == semantics.BundleOrder {
			reg.Withdraw(d.ID)
		}
	}
	if _, err := m.AdaptBehaviour(rt); !errors.Is(err, ErrNoAlternative) {
		t.Errorf("expected ErrNoAlternative, got %v", err)
	}
}

func TestAdaptBehaviourRequireFeasible(t *testing.T) {
	m, rt, _ := fixture(t)
	m.Options.RequireFeasible = true
	rt.MarkCompleted("browse", qos.Vector{399.9, 5, 0.95, 0.9, 40}) // consumed almost everything
	_, err := m.AdaptBehaviour(rt)
	if err == nil {
		t.Error("infeasible residual with RequireFeasible should error")
	}
	// Without RequireFeasible a best-effort plan is returned.
	m.Options.RequireFeasible = false
	plan, err := m.AdaptBehaviour(rt)
	if err != nil {
		t.Fatalf("best-effort plan expected: %v", err)
	}
	if plan.Selection.Feasible {
		t.Error("plan should be the infeasible best-effort one")
	}
}

func TestAdaptBehaviourClassByConceptFallback(t *testing.T) {
	m, rt, _ := fixture(t)
	// Rename the running behaviour so ClassOf misses and the concept
	// lookup has to find the class.
	rt.Behaviour = rt.Behaviour.Clone()
	rt.Behaviour.Name = "renamed"
	rt.MarkCompleted("browse", nil)
	plan, err := m.AdaptBehaviour(rt)
	if err != nil {
		t.Fatalf("concept fallback failed: %v", err)
	}
	if plan.Alternative == nil {
		t.Error("plan missing alternative")
	}
}

func TestAdaptBehaviourMergedGranularity(t *testing.T) {
	// The alternative behaviour is coarser than the remaining work: one
	// one-stop activity replaces order+pay. Matching needs AllowMerge.
	onto := semantics.PervasiveWithScenarios()
	reg := registry.New(onto)
	publish(t, reg, semantics.BrowseCatalog, "browse", 3)
	publish(t, reg, semantics.BookSale, "book", 3)
	publish(t, reg, semantics.DVDSale, "dvd", 3)
	publish(t, reg, semantics.CardPayment, "pay", 3)
	publish(t, reg, semantics.ShoppingService, "onestop", 3)
	publish(t, reg, semantics.MobilePayment, "mpay", 3)

	b1 := &task.Task{Name: "fine", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "browse", Concept: semantics.BrowseCatalog}),
		task.NewActivity(&task.Activity{ID: "book", Concept: semantics.BookSale}),
		task.NewActivity(&task.Activity{ID: "dvd", Concept: semantics.DVDSale}),
		task.NewActivity(&task.Activity{ID: "pay", Concept: semantics.PaymentService}),
	)}
	// coarse merges the two sale activities into one one-stop kiosk.
	coarse := &task.Task{Name: "coarse", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "onestop", Concept: semantics.ShoppingService}),
		task.NewActivity(&task.Activity{ID: "mpay2", Concept: semantics.MobilePayment}),
	)}
	repo := task.NewRepository(onto)
	if err := repo.Register(&task.Class{
		Name: "granularity", Concept: semantics.ShoppingService,
		Behaviours: []*task.Task{b1, coarse},
	}); err != nil {
		t.Fatal(err)
	}

	req := &core.Request{Task: b1, Properties: stdPS(),
		Constraints: qos.Constraints{{Property: "responseTime", Bound: 500}}}
	cands := make(map[string][]registry.Candidate)
	for _, a := range b1.Activities() {
		cands[a.ID] = reg.CandidatesForActivity(a, stdPS())
	}
	sel := core.NewSelector(core.Options{})
	res, err := sel.Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(req, res)
	m := &Manager{Registry: reg, Repo: repo, Selector: sel}
	m.Options.Match.AllowSubsume = true
	rt.MarkCompleted("browse", qos.Vector{50, 5, 0.95, 0.9, 40})

	// Without merging the coarse behaviour cannot host order+pay.
	if _, err := m.AdaptBehaviour(rt); err == nil {
		t.Fatal("coarse alternative should not match without AllowMerge")
	}

	m.Options.Match.AllowMerge = true
	plan, err := m.AdaptBehaviour(rt)
	if err != nil {
		t.Fatalf("merged-granularity adaptation: %v", err)
	}
	if plan.Alternative.Name != "coarse" {
		t.Errorf("alternative = %s", plan.Alternative.Name)
	}
	if ids := plan.NewTask.ActivityIDs(); len(ids) != 2 || ids[0] != "mpay2" || ids[1] != "onestop" {
		t.Errorf("new task = %v, want [mpay2 onestop]", ids)
	}
	if !plan.Selection.Feasible {
		t.Error("one-stop re-selection should be feasible")
	}
}
