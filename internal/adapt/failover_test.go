package adapt

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"qasom/internal/core"
	"qasom/internal/exec"
	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/subidx"
	"qasom/internal/task"
)

// indexedFixture extends fixture with a monitor, a tracker and a warm
// substitution index on the manager.
func indexedFixture(t *testing.T) (*Manager, *Runtime, *registry.Registry, *monitor.Monitor, *subidx.Tracker) {
	t.Helper()
	m, rt, reg := fixture(t)
	mon := monitor.New(stdPS(), monitor.Options{})
	m.Monitor = mon
	tr := subidx.NewTracker(reg, mon, subidx.Options{})
	t.Cleanup(tr.Close)
	m.Index = tr.Track(rt)
	m.Index.SetStager(
		func() string { return m.FrontierKey(rt) },
		func() *subidx.StagedBehaviours { return m.StageBehaviours(rt) },
	)
	m.Index.BuildNow()
	return m, rt, reg, mon, tr
}

// boundID reads the current binding of an activity.
func boundID(rt *Runtime, act string) registry.ServiceID {
	var id registry.ServiceID
	rt.View(func(res *core.Result) { id = res.Assignment[act].Service.ID })
	return id
}

// altIDs reads the current alternate rotation of an activity.
func altIDs(rt *Runtime, act string) []registry.ServiceID {
	var out []registry.ServiceID
	rt.View(func(res *core.Result) {
		for _, a := range res.Alternates[act] {
			out = append(out, a.Service.ID)
		}
	})
	return out
}

// TestDifferentialDecisionIdentity proves the acceptance criterion:
// index-first failover picks the same substitute as the reactive scan
// given identical registry/monitor state, across a script of
// withdrawals, health demotions, recoveries and repeated failovers
// (publishes frozen — index-inserted extras are a documented index-only
// bonus).
func TestDifferentialDecisionIdentity(t *testing.T) {
	mA, rtA, reg, mon, tr := indexedFixture(t)

	// The reactive twin: same registry, monitor and options, no index,
	// operating on a deep copy of the same selection.
	var twinRes *core.Result
	rtA.View(func(res *core.Result) { twinRes = res.Clone() })
	rtB := NewRuntime(rtA.Req, twinRes)
	mB := &Manager{Registry: reg, Repo: mA.Repo, Selector: mA.Selector, Monitor: mon}

	failover := func(step string) {
		t.Helper()
		tr.Quiesce() // both sides must see the same registry/monitor state
		for _, act := range []string{"browse", "order", "pay"} {
			idA, idB := boundID(rtA, act), boundID(rtB, act)
			if idA != idB {
				t.Fatalf("%s: bindings diverged before failover: %s vs %s", step, idA, idB)
			}
			exclude := map[registry.ServiceID]bool{idA: true}
			subA, errA := mA.Substitute(rtA, act, exclude)
			subB, errB := mB.Substitute(rtB, act, exclude)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s/%s: error divergence: %v vs %v", step, act, errA, errB)
			}
			if errA != nil {
				continue
			}
			if subA.Service.ID != subB.Service.ID {
				t.Fatalf("%s/%s: index picked %s, reactive picked %s",
					step, act, subA.Service.ID, subB.Service.ID)
			}
			a, b := altIDs(rtA, act), altIDs(rtB, act)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s/%s: rotation diverged: %v vs %v", step, act, a, b)
			}
		}
	}

	report := func(id registry.ServiceID, success bool, n int) {
		for i := 0; i < n; i++ {
			if err := mon.Report(monitor.Observation{
				Service: id, Vector: stdPS().NewVector(), Success: success,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	failover("baseline")
	// Withdraw the head alternate of "order".
	reg.Withdraw(altIDs(rtA, "order")[0])
	failover("after-withdraw")
	// Demote the new head by monitor observations.
	report(altIDs(rtA, "order")[0], false, 5)
	failover("after-demotion")
	// Recover it.
	report(altIDs(rtA, "order")[0], true, 15)
	failover("after-recovery")
	// Exhaust: repeated failovers rotate through everything.
	failover("rotate-1")
	failover("rotate-2")
}

// TestIndexHitPerformsZeroRegistryMonitorChecks asserts, via the obs
// counters, that an index-served failover touches neither the registry
// nor the monitor.
func TestIndexHitPerformsZeroRegistryMonitorChecks(t *testing.T) {
	m, rt, _, _, _ := indexedFixture(t)
	hub := obs.NewHub()
	m.Obs = hub

	counter := func(name string) uint64 {
		return hub.Metrics.Counter(name, "").Value()
	}
	sub, err := m.Substitute(rt, "order", map[registry.ServiceID]bool{boundID(rt, "order"): true})
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if sub.Service.ID == "" {
		t.Fatal("empty substitute")
	}
	if got := counter(failoverHitMetric); got != 1 {
		t.Errorf("index hits = %d, want 1", got)
	}
	if got := counter(failoverRegistryChecksMetric); got != 0 {
		t.Errorf("registry checks on index hit = %d, want 0", got)
	}
	if got := counter(failoverMonitorChecksMetric); got != 0 {
		t.Errorf("monitor checks on index hit = %d, want 0", got)
	}
	fs := rt.FailoverStats()
	if fs.IndexHits != 1 || len(fs.Fallbacks) != 0 {
		t.Errorf("failover stats = %+v, want 1 hit, no fallbacks", fs)
	}

	// A cold index (fresh manager state) falls back and probes.
	m.Index.MarkCold()
	if _, err := m.Substitute(rt, "order", map[registry.ServiceID]bool{boundID(rt, "order"): true}); err != nil {
		t.Fatalf("reactive Substitute: %v", err)
	}
	if got := counter(failoverRegistryChecksMetric); got == 0 {
		t.Error("reactive fallback should probe the registry")
	}
	fs = rt.FailoverStats()
	if fs.Fallbacks["cold"] != 1 {
		t.Errorf("fallback causes = %v, want cold=1", fs.Fallbacks)
	}
}

// TestIndexedSubstituteAllocFloor floors the per-failover allocation
// count on the index path. The commit allocates exactly one fresh
// replacement slice (immutability contract for lock-free readers);
// everything else is in-place or pooled, independent of candidate-set
// size.
func TestIndexedSubstituteAllocFloor(t *testing.T) {
	m, rt, _, _, _ := indexedFixture(t)
	exclude := make(map[registry.ServiceID]bool, 1)
	allocs := testing.AllocsPerRun(200, func() {
		clear(exclude)
		exclude[boundID(rt, "order")] = true
		if _, err := m.Substitute(rt, "order", exclude); err != nil {
			t.Fatal(err)
		}
	})
	// boundID's View closure + the Commit slice are the budget; the
	// lookup and rotation themselves are allocation-free.
	if allocs > 4 {
		t.Errorf("index-path Substitute allocs = %g, want ≤ 4", allocs)
	}
}

// parallelTask builds par(a1, a2, a3) over three concepts with published
// candidates.
func parallelFixture(t *testing.T) (*Manager, *Runtime, *registry.Registry) {
	t.Helper()
	onto := semantics.PervasiveWithScenarios()
	reg := registry.New(onto)
	publish(t, reg, semantics.BrowseCatalog, "browse", 6)
	publish(t, reg, semantics.OrderItem, "order", 6)
	publish(t, reg, semantics.CardPayment, "pay", 6)
	pt := &task.Task{Name: "par3", Concept: semantics.ShoppingService, Root: task.Parallel(
		task.NewActivity(&task.Activity{ID: "a1", Concept: semantics.BrowseCatalog}),
		task.NewActivity(&task.Activity{ID: "a2", Concept: semantics.OrderItem}),
		task.NewActivity(&task.Activity{ID: "a3", Concept: semantics.CardPayment}),
	)}
	req := &core.Request{Task: pt, Properties: stdPS()}
	cands := make(map[string][]registry.Candidate)
	for _, a := range pt.Activities() {
		cands[a.ID] = reg.CandidatesForActivity(a, stdPS())
	}
	sel := core.NewSelector(core.Options{MaxAlternates: 8})
	res, err := sel.Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(req, res)
	m := &Manager{Registry: reg, Selector: sel}
	return m, rt, reg
}

// checkBindingInvariant asserts that, per activity, the binding plus the
// alternates contain no duplicates and exactly the services selection
// handed out (no service lost, none invented).
func checkBindingInvariant(t *testing.T, rt *Runtime, want map[string]map[registry.ServiceID]bool) {
	t.Helper()
	rt.View(func(res *core.Result) {
		for act, expect := range want {
			seen := map[registry.ServiceID]bool{}
			add := func(id registry.ServiceID) {
				if seen[id] {
					t.Errorf("%s: duplicate binding of %s", act, id)
				}
				seen[id] = true
				if !expect[id] {
					t.Errorf("%s: unexpected service %s", act, id)
				}
			}
			add(res.Assignment[act].Service.ID)
			for _, a := range res.Alternates[act] {
				add(a.Service.ID)
			}
			if len(seen) != len(expect) {
				t.Errorf("%s: %d services, want %d", act, len(seen), len(expect))
			}
		}
	})
}

// bindingUniverse snapshots the per-activity service sets.
func bindingUniverse(rt *Runtime) map[string]map[registry.ServiceID]bool {
	want := map[string]map[registry.ServiceID]bool{}
	rt.View(func(res *core.Result) {
		for act, cand := range res.Assignment {
			set := map[registry.ServiceID]bool{cand.Service.ID: true}
			for _, a := range res.Alternates[act] {
				set[a.Service.ID] = true
			}
			want[act] = set
		}
	})
	return want
}

// TestConcurrentSubstitutionExactlyOnce races simultaneous failovers of
// parallel activities (with and without the index) and checks the
// exactly-once / no-duplicate-binding invariants.
func TestConcurrentSubstitutionExactlyOnce(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		name := "reactive"
		if indexed {
			name = "indexed"
		}
		t.Run(name, func(t *testing.T) {
			m, rt, reg := parallelFixture(t)
			if indexed {
				mon := monitor.New(stdPS(), monitor.Options{})
				m.Monitor = mon
				tr := subidx.NewTracker(reg, mon, subidx.Options{})
				t.Cleanup(tr.Close)
				m.Index = tr.Track(rt)
				m.Index.BuildNow()
			}
			want := bindingUniverse(rt)
			const rounds = 50
			var wg sync.WaitGroup
			for _, act := range []string{"a1", "a2", "a3"} {
				wg.Add(1)
				go func(act string) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						exclude := map[registry.ServiceID]bool{boundID(rt, act): true}
						if _, err := m.Substitute(rt, act, exclude); err != nil {
							t.Errorf("%s round %d: %v", act, i, err)
							return
						}
					}
				}(act)
			}
			wg.Wait()
			if got := rt.Substitutions(); got != 3*rounds {
				t.Errorf("substitutions = %d, want exactly %d", got, 3*rounds)
			}
			checkBindingInvariant(t, rt, want)
		})
	}
}

// TestExecutorParallelFailuresSubstituteOnce drives the invariant
// through the real executor: every bound service of a parallel task is
// dead, so all three failovers race inside one Run.
func TestExecutorParallelFailuresSubstituteOnce(t *testing.T) {
	m, rt, reg := parallelFixture(t)
	mon := monitor.New(stdPS(), monitor.Options{})
	m.Monitor = mon
	tr := subidx.NewTracker(reg, mon, subidx.Options{})
	t.Cleanup(tr.Close)
	m.Index = tr.Track(rt)
	m.Index.BuildNow()
	want := bindingUniverse(rt)

	dead := map[registry.ServiceID]bool{}
	rt.View(func(res *core.Result) {
		for _, cand := range res.Assignment {
			dead[cand.Service.ID] = true
		}
	})
	e := &exec.Executor{
		Invoker:    &failingInvoker{dead: dead},
		Binder:     rt,
		OnFailure:  m.FailureHandler(rt),
		OnComplete: m.CompletionHook(rt),
	}
	if _, err := e.Run(context.Background(), rt.Req.Task); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := rt.Substitutions(); got != 3 {
		t.Errorf("substitutions = %d, want exactly 3 (one per failed activity)", got)
	}
	if rt.CompletedCount() != 3 {
		t.Errorf("completed = %d, want 3", rt.CompletedCount())
	}
	checkBindingInvariant(t, rt, want)
}

// TestIndexTracksChurnDuringFailovers runs failovers while the registry
// churns underneath; afterwards the index must mirror the runtime's
// rotation order exactly (selection-order prefix) and the binding
// invariant must hold.
func TestIndexTracksChurnDuringFailovers(t *testing.T) {
	m, rt, reg := parallelFixture(t)
	mon := monitor.New(stdPS(), monitor.Options{})
	m.Monitor = mon
	tr := subidx.NewTracker(reg, mon, subidx.Options{})
	t.Cleanup(tr.Close)
	m.Index = tr.Track(rt)
	m.Index.BuildNow()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := registry.ServiceID(fmt.Sprintf("order-%d", 1+i%5))
			if i%2 == 0 {
				reg.Withdraw(id)
			} else {
				reg.Publish(registry.Description{
					ID: id, Concept: semantics.OrderItem,
					Offers: offers(40+float64(5*(1+i%5)), 5, 0.95, 0.9, 40),
				})
			}
		}
	}()
	for i := 0; i < 200; i++ {
		for _, act := range []string{"a1", "a2", "a3"} {
			exclude := map[registry.ServiceID]bool{boundID(rt, act): true}
			if _, err := m.Substitute(rt, act, exclude); err != nil {
				t.Fatalf("%s round %d: %v", act, i, err)
			}
		}
	}
	close(stop)
	churn.Wait()
	tr.Quiesce()

	for _, act := range []string{"a1", "a2", "a3"} {
		want := altIDs(rt, act)
		reps := m.Index.Replacements(act)
		if len(reps) < len(want) {
			t.Fatalf("%s: index has %d entries, runtime has %d alternates", act, len(reps), len(want))
		}
		for i, id := range want {
			if reps[i].Service != id {
				t.Fatalf("%s: rotation diverged at %d: index %v, runtime %v", act, i, reps[i].Service, want)
			}
		}
	}
}

// TestResultIsDetachedCopy pins the new aliasing contract: Result()
// returns a deep copy that later substitutions do not mutate.
func TestResultIsDetachedCopy(t *testing.T) {
	m, rt, _ := fixture(t)
	before := rt.Result()
	beforeBound := before.Assignment["order"].Service.ID
	if _, err := m.Substitute(rt, "order", nil); err != nil {
		t.Fatal(err)
	}
	if got := before.Assignment["order"].Service.ID; got != beforeBound {
		t.Errorf("Result() copy mutated by Substitute: %s -> %s", beforeBound, got)
	}
	if rt.Result().Assignment["order"].Service.ID == beforeBound {
		t.Error("runtime itself should have substituted")
	}
}

// TestStagedBehaviouralAdaptation verifies the staged fast path: after
// the index pre-stages the match search, AdaptBehaviour consumes it
// (Staged=true), picks the same alternative as the unstaged search, and
// invalidates the index on switch.
func TestStagedBehaviouralAdaptation(t *testing.T) {
	m, rt, _, _, tr := indexedFixture(t)
	rt.MarkCompleted("browse", qos.Vector{80, 5, 0.95, 0.9, 40})
	tr.Quiesce() // restage for the moved frontier

	staged := m.Index.Staged(m.FrontierKey(rt))
	if staged == nil || len(staged.Matches) == 0 {
		t.Fatal("expected staged behavioural alternates for the current frontier")
	}
	plan, err := m.AdaptBehaviour(rt)
	if err != nil {
		t.Fatalf("AdaptBehaviour: %v", err)
	}
	if !plan.Staged {
		t.Error("plan should have consumed the staged matches")
	}
	if plan.Alternative.Name != "b2" {
		t.Errorf("alternative = %s, want b2 (same as unstaged search)", plan.Alternative.Name)
	}
	if ids := plan.NewTask.ActivityIDs(); len(ids) != 2 || ids[0] != "bundle" || ids[1] != "mpay" {
		t.Errorf("new task activities = %v, want [bundle mpay]", ids)
	}
	if rt.Behaviour.Name != "b2" {
		t.Errorf("runtime behaviour = %s, want b2", rt.Behaviour.Name)
	}
	// The switch marked the index cold; a BuildNow re-indexes the new
	// selection.
	m.Index.BuildNow()
	if got := m.Index.State(); got != subidx.StateBuilt {
		t.Fatalf("index state after rebuild = %v", got)
	}
	if m.Index.Replacements("bundle") == nil {
		t.Error("rebuilt index should cover the new behaviour's activities")
	}
}
