// Package adapt implements QoS-driven composition adaptation (Chapter V):
// the run-time state of a composition, the service-substitution strategy
// (replace a failing/degraded service with a selection-time alternate)
// and the behavioural-adaptation strategy (switch the remaining work to
// an equivalent behaviour from the task-class repository, found through
// subgraph-homeomorphism matching, then re-run QASSA on the remaining
// subtask under residual constraints).
//
// Failover is index-first: when the manager carries a substitution index
// (internal/subidx), Substitute resolves the replacement with one
// lock-free lookup — zero registry or monitor calls on the failure path —
// and falls back to the reactive alternate scan only when the index is
// cold, drained, exhausted or raced by a concurrent commit. The reactive
// scan itself snapshots its decision inputs outside the runtime lock, so
// even the fallback no longer serializes parallel-branch failovers
// against the registry and monitor locks.
package adapt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qasom/internal/core"
	"qasom/internal/exec"
	"qasom/internal/graph"
	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/subidx"
	"qasom/internal/task"
)

// Runtime is the adaptation-relevant state of one running composition.
// Safe for concurrent use (the executor completes parallel activities
// concurrently).
type Runtime struct {
	// Req is the originating request.
	Req *core.Request
	// Behaviour is the currently executing behaviour (initially
	// Req.Task; replaced by behavioural adaptation).
	Behaviour *task.Task

	// version counts selection mutations (substitution commits and
	// behaviour switches). Bumped under mu, read lock-free: the
	// substitution index uses it to discard rebuilds whose snapshot a
	// concurrent commit made stale.
	version atomic.Uint64

	// deps is the request's compiled dependency rule set (nil when the
	// request declares none). Every substitution path — indexed, reactive
	// and locked — consults it, so failover can never install a binding
	// that violates a dependency rule.
	deps *core.DependencySet

	mu sync.Mutex
	// result is the current selection (assignment + alternates).
	result *core.Result
	// completed marks finished activities of the current behaviour.
	completed map[string]bool
	// observed keeps the measured QoS of completed activities (feeding
	// residual-constraint computation).
	observed map[string]qos.Vector
	// substitutions counts applied service substitutions.
	substitutions int
	// failoverHits counts substitutions served by the index;
	// failoverFallbacks counts reactive fallbacks by cause.
	failoverHits      int
	failoverFallbacks map[string]int
}

// NewRuntime wraps a fresh selection into a runtime.
func NewRuntime(req *core.Request, res *core.Result) *Runtime {
	// The request was validated at selection time, so a compile failure
	// here can only mean the caller mutated it since; running without the
	// guard (nil set) is the best-effort answer either way.
	ds, _ := req.CompiledDependencies()
	return &Runtime{
		Req:       req,
		Behaviour: req.Task,
		deps:      ds,
		result:    res,
		completed: make(map[string]bool),
		observed:  make(map[string]qos.Vector),
	}
}

// depAdmissibleLocked reports whether binding cand to the activity keeps
// every dependency rule satisfied under the rest of the current
// assignment. Caller holds rt.mu. Always true without rules.
func (rt *Runtime) depAdmissibleLocked(activityID string, cand registry.Candidate) bool {
	if rt.deps == nil {
		return true
	}
	return rt.deps.Admissible(activityID, cand, func(id string) (registry.Candidate, bool) {
		c, ok := rt.result.Assignment[id]
		return c, ok
	})
}

// Result returns a deep copy of the current selection result. The copy
// is detached: Substitute and behaviour switches mutate the runtime's
// internal result in place, and the returned value never observes those
// mutations. Callers that only need a cheap read under the runtime lock
// use View instead.
func (rt *Runtime) Result() *core.Result {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.result.Clone()
}

// View runs f with the live selection result while holding the runtime
// lock. The pointer aliases internal state that concurrent substitutions
// mutate: f must not retain it past its return and must not mutate it.
func (rt *Runtime) View(f func(*core.Result)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f(rt.result)
}

// Substitutions counts the service substitutions applied so far.
func (rt *Runtime) Substitutions() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.substitutions
}

// FailoverStats summarizes how this runtime's failovers were served.
type FailoverStats struct {
	// IndexHits counts substitutions resolved by the substitution index
	// (lock-free, zero registry/monitor calls).
	IndexHits int
	// Fallbacks counts reactive-scan fallbacks by cause ("cold",
	// "drained", "exhausted", "raced", "disabled").
	Fallbacks map[string]int
}

// FailoverStats returns a copy of the failover accounting.
func (rt *Runtime) FailoverStats() FailoverStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := FailoverStats{IndexHits: rt.failoverHits}
	if len(rt.failoverFallbacks) > 0 {
		out.Fallbacks = make(map[string]int, len(rt.failoverFallbacks))
		for k, v := range rt.failoverFallbacks {
			out.Fallbacks[k] = v
		}
	}
	return out
}

// noteFallback records one reactive fallback by cause.
func (rt *Runtime) noteFallback(cause string) {
	rt.mu.Lock()
	if rt.failoverFallbacks == nil {
		rt.failoverFallbacks = make(map[string]int, 4)
	}
	rt.failoverFallbacks[cause]++
	rt.mu.Unlock()
}

// SelectionVersion returns the runtime's mutation counter without taking
// the runtime lock (safe to call while the index lock is held).
func (rt *Runtime) SelectionVersion() uint64 { return rt.version.Load() }

// SelectionSnapshot captures the current selection state for the
// substitution index: fresh map/slice copies of the assignment and the
// alternate lists in their current rotation order (candidate values share
// immutable backing data).
func (rt *Runtime) SelectionSnapshot() subidx.Snapshot {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	snap := subidx.Snapshot{
		Version:    rt.version.Load(),
		Activities: append([]*task.Activity(nil), rt.Behaviour.Activities()...),
		Assignment: make(map[string]registry.Candidate, len(rt.result.Assignment)),
		Alternates: make(map[string][]registry.Candidate, len(rt.result.Alternates)),
		Weights:    rt.Req.EffectiveWeights(),
		Properties: rt.Req.Properties,
	}
	if rt.deps != nil {
		snap.Mask = rt.deps
	}
	for k, v := range rt.result.Assignment {
		snap.Assignment[k] = v
	}
	for k, v := range rt.result.Alternates {
		snap.Alternates[k] = append([]registry.Candidate(nil), v...)
	}
	return snap
}

var _ subidx.Source = (*Runtime)(nil)

// ResetProgress clears completion tracking so the behaviour can run
// again (repeated executions of the same composition, e.g. streaming
// segments). Substitution history and the current assignment persist.
func (rt *Runtime) ResetProgress() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.completed = make(map[string]bool)
	rt.observed = make(map[string]qos.Vector)
}

// MarkCompleted records a finished activity and its measured QoS.
func (rt *Runtime) MarkCompleted(activityID string, measured qos.Vector) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.completed[activityID] = true
	if measured != nil {
		rt.observed[activityID] = measured.Clone()
	}
}

// Completed reports whether the activity finished.
func (rt *Runtime) Completed(activityID string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.completed[activityID]
}

// CompletedCount returns the number of finished activities.
func (rt *Runtime) CompletedCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.completed)
}

// Bind implements exec.Binder: dynamic binding against the current
// assignment.
func (rt *Runtime) Bind(act *task.Activity) (registry.Candidate, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.result.Assignment[act.ID]
	if !ok {
		return registry.Candidate{}, fmt.Errorf("adapt: no service bound to activity %q", act.ID)
	}
	return c, nil
}

var _ exec.Binder = (*Runtime)(nil)

// Consumed aggregates the observed QoS of the completed part of the
// behaviour (uncompleted activities contribute identity elements).
func (rt *Runtime) Consumed() qos.Vector {
	rt.mu.Lock()
	assign := make(map[string]qos.Vector, len(rt.observed))
	for id, v := range rt.observed {
		assign[id] = v
	}
	behaviour := rt.Behaviour
	rt.mu.Unlock()
	return behaviour.AggregateQoS(rt.Req.Properties, assign, rt.Req.EffectiveApproach())
}

// switchBehaviour installs an alternative behaviour and its fresh
// selection; activities of the new behaviour that the selection does not
// schedule (they were matched to already-done work) are marked completed.
func (rt *Runtime) switchBehaviour(newBehaviour *task.Task, sel *core.Result) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.Behaviour = newBehaviour
	rt.result = sel
	rt.version.Add(1)
	// Completed activities of the old behaviour do not exist in the new
	// one: keep only observations (for consumed QoS the old behaviour's
	// aggregate was already folded into the residual constraints), and
	// reset completion tracking to the new behaviour's frame.
	rt.completed = make(map[string]bool)
	for _, a := range newBehaviour.Activities() {
		if _, scheduled := sel.Assignment[a.ID]; !scheduled {
			rt.completed[a.ID] = true
		}
	}
}

// Options tune the adaptation manager.
type Options struct {
	// MinSuccessRate disqualifies substitutes the monitor has seen
	// failing more often than this; 0 means 0.5. Must match the
	// substitution index's threshold when an index is attached (the
	// facade wires both from the same knob).
	MinSuccessRate float64
	// Match configures the homeomorphism search of behavioural
	// adaptation (the manager fills in the registry's ontology when the
	// field is nil).
	Match graph.MatchOptions
	// RequireFeasible makes behavioural adaptation reject alternatives
	// whose re-selection violates the residual constraints. Default
	// false: the best-effort plan is returned when nothing feasible
	// exists.
	RequireFeasible bool
}

func (o Options) withDefaults() Options {
	if o.MinSuccessRate <= 0 {
		o.MinSuccessRate = 0.5
	}
	return o
}

// Manager coordinates the two adaptation strategies.
type Manager struct {
	// Registry resolves candidate services.
	Registry *registry.Registry
	// Repo is the task-class repository.
	Repo *task.Repository
	// Selector re-runs QASSA during behavioural adaptation.
	Selector *core.Selector
	// Monitor, when set, filters substitutes by observed health.
	Monitor *monitor.Monitor
	// Index, when set, serves failovers from the substitution index;
	// nil keeps the fully reactive behaviour.
	Index *subidx.Index
	// Obs, when set, exports adaptation counters (substitutions,
	// behaviour switches, failover causes) into the hub's metrics
	// registry.
	Obs *obs.Hub
	// Options tune the strategies.
	Options Options
}

const (
	behaviourSwitchMetric = "qasom_adapt_behaviour_switches_total"
	behaviourSwitchHelp   = "Behavioural adaptations applied (behaviour switched to an equivalent task)."

	substitutionMetric = "qasom_adapt_substitutions_total"
	substitutionHelp   = "Service substitutions applied by the adaptation manager."

	failoverHitMetric = "qasom_adapt_failover_index_hits_total"
	failoverHitHelp   = "Failovers resolved by a lock-free substitution-index lookup."

	failoverFallbackMetric = "qasom_adapt_failover_fallbacks_total"
	failoverFallbackHelp   = "Failovers that fell back to the reactive alternate scan, by cause."

	failoverRegistryChecksMetric = "qasom_adapt_failover_registry_checks_total"
	failoverRegistryChecksHelp   = "Registry liveness probes performed on the failover path (zero on index hits)."

	failoverMonitorChecksMetric = "qasom_adapt_failover_monitor_checks_total"
	failoverMonitorChecksHelp   = "Monitor health probes performed on the failover path (zero on index hits)."
)

// counter fetches a registry counter; nil (a no-op) without a hub.
func (m *Manager) counter(name, help string) *obs.Counter {
	if m.Obs == nil {
		return nil
	}
	return m.Obs.Metrics.Counter(name, help)
}

// fallbackCounter fetches the per-cause fallback counter; nil without a
// hub.
func (m *Manager) fallbackCounter(cause string) *obs.Counter {
	if m.Obs == nil {
		return nil
	}
	return m.Obs.Metrics.CounterVec(failoverFallbackMetric, failoverFallbackHelp, "cause").With(cause)
}

// ErrNoSubstitute is wrapped when no alternate can replace a service.
var ErrNoSubstitute = fmt.Errorf("adapt: no substitute available")

// Substitute replaces the service bound to an activity by the best
// alternate that is still published, healthy and not excluded. It
// updates the runtime's assignment and returns the substitute.
//
// With an index attached the replacement is resolved by one lock-free
// lookup (no registry or monitor calls); the reactive scan runs only
// when the index is cold, drained, exhausted, or its pick was raced by a
// concurrent selection change. Both paths commit the same rotation: the
// chosen alternate leaves the list, the displaced binding rejoins it at
// the tail.
func (m *Manager) Substitute(rt *Runtime, activityID string, exclude map[registry.ServiceID]bool) (registry.Candidate, error) {
	if m.Index != nil {
		cand, out := m.Index.Lookup(activityID, exclude)
		if out == subidx.Hit {
			if applied, cause := m.commitIndexed(rt, activityID, cand); applied {
				m.counter(failoverHitMetric, failoverHitHelp).Inc()
				return cand, nil
			} else {
				rt.noteFallback(cause)
				m.fallbackCounter(cause).Inc()
			}
		} else {
			rt.noteFallback(out.String())
			m.fallbackCounter(out.String()).Inc()
		}
	}
	return m.substituteReactive(rt, activityID, exclude)
}

// commitIndexed applies an index-resolved substitution to the runtime,
// keeping the alternate rotation in lockstep with the index. It fails
// (returning false with a fallback cause, caller runs the reactive scan)
// when the runtime no longer matches the lookup — the activity is
// unbound (a behaviour switch raced us) or the pick is already bound —
// or when the pick would violate a dependency rule under the CURRENT
// assignment (the index filtered against the assignment it was built
// from; an adjacent substitution may have shifted the admissible set
// since).
func (m *Manager) commitIndexed(rt *Runtime, activityID string, chosen registry.Candidate) (bool, string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	old, bound := rt.result.Assignment[activityID]
	if !bound || old.Service.ID == chosen.Service.ID {
		return false, "raced"
	}
	if !rt.depAdmissibleLocked(activityID, chosen) {
		return false, "dependency"
	}
	alts := rt.result.Alternates[activityID]
	pos := -1
	for i := range alts {
		if alts[i].Service.ID == chosen.Service.ID {
			pos = i
			break
		}
	}
	if pos >= 0 {
		chosen = alts[pos]
		// Rotate in place: drop the chosen alternate, displaced binding
		// rejoins at the tail. No reallocation on the failure path.
		copy(alts[pos:], alts[pos+1:])
		if old.Service.ID != "" {
			alts[len(alts)-1] = old
		} else {
			alts = alts[:len(alts)-1]
		}
		rt.result.Alternates[activityID] = alts
	} else {
		// The pick is an index-inserted extra (published after
		// selection): nothing to remove, the displaced binding still
		// rejoins the rotation.
		if old.Service.ID != "" {
			rt.result.Alternates[activityID] = append(alts, old)
		}
	}
	rt.result.Assignment[activityID] = chosen
	rt.substitutions++
	rt.failoverHits++
	rt.version.Add(1)
	m.Index.Commit(activityID, chosen.Service.ID, old)
	if rt.deps.Touches(activityID) {
		// The swap may have shifted which replacements are admissible for
		// dependency-adjacent activities: schedule a refilter off the
		// failure path (stale lists stay safe — commits revalidate here).
		m.Index.MarkDirty()
	}
	m.counter(substitutionMetric, substitutionHelp).Inc()
	return true, ""
}

// maxReactiveRetries bounds optimistic rescans of the reactive path
// before it degrades to the fully locked scan.
const maxReactiveRetries = 4

// idScratch pools the candidate-ID snapshot slices of the reactive scan.
var idScratch = sync.Pool{
	New: func() any {
		s := make([]registry.ServiceID, 0, 16)
		return &s
	},
}

// substituteReactive is the fallback scan. Unlike the pre-index
// implementation it does NOT hold the runtime lock while probing the
// registry and monitor: it snapshots the candidate IDs (and the
// runtime's mutation version) under the lock, probes outside it, then
// revalidates and commits. A concurrent commit triggers a bounded
// rescan; past the bound the scan runs fully locked, which guarantees
// termination at the cost of the old serialization.
func (m *Manager) substituteReactive(rt *Runtime, activityID string, exclude map[registry.ServiceID]bool) (registry.Candidate, error) {
	opts := m.Options.withDefaults()
	ids := idScratch.Get().(*[]registry.ServiceID)
	defer func() {
		*ids = (*ids)[:0]
		idScratch.Put(ids)
	}()
	for attempt := 0; attempt < maxReactiveRetries; attempt++ {
		rt.mu.Lock()
		version := rt.version.Load()
		alts := rt.result.Alternates[activityID]
		*ids = (*ids)[:0]
		for i := range alts {
			// Dependency-inadmissible alternates never reach the probe
			// phase; the version guard at commit time keeps the check
			// valid (any assignment change forces a rescan).
			if !rt.depAdmissibleLocked(activityID, alts[i]) {
				continue
			}
			*ids = append(*ids, alts[i].Service.ID)
		}
		rt.mu.Unlock()

		pick := m.scanEligible(*ids, exclude, opts.MinSuccessRate)
		if pick == "" {
			return registry.Candidate{}, fmt.Errorf("%w for activity %q", ErrNoSubstitute, activityID)
		}
		if cand, ok := m.commitReactive(rt, activityID, pick, version); ok {
			return cand, nil
		}
		// A concurrent commit moved the selection: rescan from the
		// current rotation order.
	}
	return m.substituteLocked(rt, activityID, exclude, opts)
}

// scanEligible walks the candidate IDs in rotation order and returns the
// first one that is not excluded, still published and healthy. Runs
// without the runtime lock; every probe is counted so tests can assert
// the index path performs none.
func (m *Manager) scanEligible(ids []registry.ServiceID, exclude map[registry.ServiceID]bool, minRate float64) registry.ServiceID {
	for _, id := range ids {
		if exclude[id] {
			continue
		}
		if m.Registry != nil {
			m.counter(failoverRegistryChecksMetric, failoverRegistryChecksHelp).Inc()
			if _, ok := m.Registry.Get(id); !ok {
				continue // withdrawn from the environment
			}
		}
		if m.Monitor != nil {
			m.counter(failoverMonitorChecksMetric, failoverMonitorChecksHelp).Inc()
			if m.Monitor.SuccessRate(id) < minRate {
				continue
			}
		}
		return id
	}
	return ""
}

// commitReactive validates that no selection change raced the unlocked
// probe phase and commits the rotation. The version guard is coarse (any
// activity's commit bumps it) but cheap; a false positive just rescans.
func (m *Manager) commitReactive(rt *Runtime, activityID string, pick registry.ServiceID, version uint64) (registry.Candidate, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.version.Load() != version {
		return registry.Candidate{}, false
	}
	return m.commitLocked(rt, activityID, pick), true
}

// commitLocked rotates pick into the binding. Caller holds rt.mu and has
// established that pick is a current alternate.
func (m *Manager) commitLocked(rt *Runtime, activityID string, pick registry.ServiceID) registry.Candidate {
	alts := rt.result.Alternates[activityID]
	pos := -1
	for i := range alts {
		if alts[i].Service.ID == pick {
			pos = i
			break
		}
	}
	if pos < 0 {
		return registry.Candidate{}
	}
	chosen := alts[pos]
	old := rt.result.Assignment[activityID]
	copy(alts[pos:], alts[pos+1:])
	if old.Service.ID != "" {
		alts[len(alts)-1] = old
	} else {
		alts = alts[:len(alts)-1]
	}
	rt.result.Alternates[activityID] = alts
	rt.result.Assignment[activityID] = chosen
	rt.substitutions++
	rt.version.Add(1)
	if m.Index != nil {
		m.Index.Commit(activityID, pick, old)
		if rt.deps.Touches(activityID) {
			m.Index.MarkDirty()
		}
	}
	m.counter(substitutionMetric, substitutionHelp).Inc()
	return chosen
}

// substituteLocked is the pre-index algorithm: scan and commit in one
// critical section. Kept as the termination guarantee of the optimistic
// reactive path under pathological commit churn.
func (m *Manager) substituteLocked(rt *Runtime, activityID string, exclude map[registry.ServiceID]bool, opts Options) (registry.Candidate, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, alt := range rt.result.Alternates[activityID] {
		if exclude[alt.Service.ID] {
			continue
		}
		if !rt.depAdmissibleLocked(activityID, alt) {
			continue
		}
		if m.Registry != nil {
			m.counter(failoverRegistryChecksMetric, failoverRegistryChecksHelp).Inc()
			if _, ok := m.Registry.Get(alt.Service.ID); !ok {
				continue
			}
		}
		if m.Monitor != nil {
			m.counter(failoverMonitorChecksMetric, failoverMonitorChecksHelp).Inc()
			if m.Monitor.SuccessRate(alt.Service.ID) < opts.MinSuccessRate {
				continue
			}
		}
		return m.commitLocked(rt, activityID, alt.Service.ID), nil
	}
	return registry.Candidate{}, fmt.Errorf("%w for activity %q", ErrNoSubstitute, activityID)
}

// excludeScratch pools the per-failover exclusion snapshots built by
// FailureHandler (one map per in-flight failover instead of one per
// call).
var excludeScratch = sync.Pool{
	New: func() any { return make(map[registry.ServiceID]bool, 8) },
}

// FailureHandler wires substitution into the executor as the
// terminal-failure handler: each terminally failed attempt excludes the
// failed service and substitutes the next alternate. The executor's
// resilience policy has already spent its backoff budget on retryable
// failures by the time this runs; the failure class still distinguishes
// them — a binding lost to a flaky link (Retryable) stays eligible for
// re-selection later, while an application-level failure (Terminal)
// excludes the service for the rest of the run.
func (m *Manager) FailureHandler(rt *Runtime) exec.FailureHandler {
	excluded := make(map[registry.ServiceID]bool)
	var mu sync.Mutex
	return func(act *task.Activity, failed registry.Candidate, attempt int, class resilience.Class) (registry.Candidate, error) {
		snapshot := excludeScratch.Get().(map[registry.ServiceID]bool)
		clear(snapshot)
		mu.Lock()
		if class != resilience.Retryable {
			excluded[failed.Service.ID] = true
		}
		for k, v := range excluded {
			snapshot[k] = v
		}
		// Even a link-failed binding must not be handed straight back:
		// exclude it from THIS substitution without remembering it.
		snapshot[failed.Service.ID] = true
		mu.Unlock()
		cand, err := m.Substitute(rt, act.ID, snapshot)
		clear(snapshot)
		excludeScratch.Put(snapshot)
		return cand, err
	}
}

// CompletionHook returns the executor OnComplete callback that keeps the
// runtime's progress tracking up to date using monitor estimates for the
// observed QoS (falling back to the advertised vector).
func (m *Manager) CompletionHook(rt *Runtime) func(string) {
	return func(activityID string) {
		var measured qos.Vector
		rt.mu.Lock()
		bound, ok := rt.result.Assignment[activityID]
		rt.mu.Unlock()
		if ok {
			if m.Monitor != nil {
				if est, has := m.Monitor.Estimate(bound.Service.ID); has {
					measured = est
				}
			}
			if measured == nil {
				measured = bound.Vector
			}
		}
		rt.MarkCompleted(activityID, measured)
	}
}
