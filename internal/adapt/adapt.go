// Package adapt implements QoS-driven composition adaptation (Chapter V):
// the run-time state of a composition, the service-substitution strategy
// (replace a failing/degraded service with a selection-time alternate)
// and the behavioural-adaptation strategy (switch the remaining work to
// an equivalent behaviour from the task-class repository, found through
// subgraph-homeomorphism matching, then re-run QASSA on the remaining
// subtask under residual constraints).
package adapt

import (
	"fmt"
	"sync"

	"qasom/internal/core"
	"qasom/internal/exec"
	"qasom/internal/graph"
	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/task"
)

// Runtime is the adaptation-relevant state of one running composition.
// Safe for concurrent use (the executor completes parallel activities
// concurrently).
type Runtime struct {
	// Req is the originating request.
	Req *core.Request
	// Behaviour is the currently executing behaviour (initially
	// Req.Task; replaced by behavioural adaptation).
	Behaviour *task.Task

	mu sync.Mutex
	// result is the current selection (assignment + alternates).
	result *core.Result
	// completed marks finished activities of the current behaviour.
	completed map[string]bool
	// observed keeps the measured QoS of completed activities (feeding
	// residual-constraint computation).
	observed map[string]qos.Vector
	// substitutions counts applied service substitutions.
	substitutions int
}

// NewRuntime wraps a fresh selection into a runtime.
func NewRuntime(req *core.Request, res *core.Result) *Runtime {
	return &Runtime{
		Req:       req,
		Behaviour: req.Task,
		result:    res,
		completed: make(map[string]bool),
		observed:  make(map[string]qos.Vector),
	}
}

// Result returns the current selection result.
func (rt *Runtime) Result() *core.Result {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.result
}

// Substitutions counts the service substitutions applied so far.
func (rt *Runtime) Substitutions() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.substitutions
}

// ResetProgress clears completion tracking so the behaviour can run
// again (repeated executions of the same composition, e.g. streaming
// segments). Substitution history and the current assignment persist.
func (rt *Runtime) ResetProgress() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.completed = make(map[string]bool)
	rt.observed = make(map[string]qos.Vector)
}

// MarkCompleted records a finished activity and its measured QoS.
func (rt *Runtime) MarkCompleted(activityID string, measured qos.Vector) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.completed[activityID] = true
	if measured != nil {
		rt.observed[activityID] = measured.Clone()
	}
}

// Completed reports whether the activity finished.
func (rt *Runtime) Completed(activityID string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.completed[activityID]
}

// CompletedCount returns the number of finished activities.
func (rt *Runtime) CompletedCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.completed)
}

// Bind implements exec.Binder: dynamic binding against the current
// assignment.
func (rt *Runtime) Bind(act *task.Activity) (registry.Candidate, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.result.Assignment[act.ID]
	if !ok {
		return registry.Candidate{}, fmt.Errorf("adapt: no service bound to activity %q", act.ID)
	}
	return c, nil
}

var _ exec.Binder = (*Runtime)(nil)

// Consumed aggregates the observed QoS of the completed part of the
// behaviour (uncompleted activities contribute identity elements).
func (rt *Runtime) Consumed() qos.Vector {
	rt.mu.Lock()
	assign := make(map[string]qos.Vector, len(rt.observed))
	for id, v := range rt.observed {
		assign[id] = v
	}
	behaviour := rt.Behaviour
	rt.mu.Unlock()
	return behaviour.AggregateQoS(rt.Req.Properties, assign, rt.Req.EffectiveApproach())
}

// switchBehaviour installs an alternative behaviour and its fresh
// selection; activities of the new behaviour that the selection does not
// schedule (they were matched to already-done work) are marked completed.
func (rt *Runtime) switchBehaviour(newBehaviour *task.Task, sel *core.Result) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.Behaviour = newBehaviour
	rt.result = sel
	// Completed activities of the old behaviour do not exist in the new
	// one: keep only observations (for consumed QoS the old behaviour's
	// aggregate was already folded into the residual constraints), and
	// reset completion tracking to the new behaviour's frame.
	rt.completed = make(map[string]bool)
	for _, a := range newBehaviour.Activities() {
		if _, scheduled := sel.Assignment[a.ID]; !scheduled {
			rt.completed[a.ID] = true
		}
	}
}

// Options tune the adaptation manager.
type Options struct {
	// MinSuccessRate disqualifies substitutes the monitor has seen
	// failing more often than this; 0 means 0.5.
	MinSuccessRate float64
	// Match configures the homeomorphism search of behavioural
	// adaptation (the manager fills in the registry's ontology when the
	// field is nil).
	Match graph.MatchOptions
	// RequireFeasible makes behavioural adaptation reject alternatives
	// whose re-selection violates the residual constraints. Default
	// false: the best-effort plan is returned when nothing feasible
	// exists.
	RequireFeasible bool
}

func (o Options) withDefaults() Options {
	if o.MinSuccessRate <= 0 {
		o.MinSuccessRate = 0.5
	}
	return o
}

// Manager coordinates the two adaptation strategies.
type Manager struct {
	// Registry resolves candidate services.
	Registry *registry.Registry
	// Repo is the task-class repository.
	Repo *task.Repository
	// Selector re-runs QASSA during behavioural adaptation.
	Selector *core.Selector
	// Monitor, when set, filters substitutes by observed health.
	Monitor *monitor.Monitor
	// Obs, when set, exports adaptation counters (substitutions,
	// behaviour switches) into the hub's metrics registry.
	Obs *obs.Hub
	// Options tune the strategies.
	Options Options
}

const (
	behaviourSwitchMetric = "qasom_adapt_behaviour_switches_total"
	behaviourSwitchHelp   = "Behavioural adaptations applied (behaviour switched to an equivalent task)."
)

// counter fetches a registry counter; nil (a no-op) without a hub.
func (m *Manager) counter(name, help string) *obs.Counter {
	if m.Obs == nil {
		return nil
	}
	return m.Obs.Metrics.Counter(name, help)
}

// ErrNoSubstitute is wrapped when no alternate can replace a service.
var ErrNoSubstitute = fmt.Errorf("adapt: no substitute available")

// Substitute replaces the service bound to an activity by the best
// alternate that is still published, healthy and not excluded. It
// updates the runtime's assignment and returns the substitute.
func (m *Manager) Substitute(rt *Runtime, activityID string, exclude map[registry.ServiceID]bool) (registry.Candidate, error) {
	opts := m.Options.withDefaults()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	alts := rt.result.Alternates[activityID]
	for i, alt := range alts {
		if exclude[alt.Service.ID] {
			continue
		}
		if m.Registry != nil {
			if _, ok := m.Registry.Get(alt.Service.ID); !ok {
				continue // withdrawn from the environment
			}
		}
		if m.Monitor != nil && m.Monitor.SuccessRate(alt.Service.ID) < opts.MinSuccessRate {
			continue
		}
		// Commit: swap assignments and rotate the alternate out.
		old := rt.result.Assignment[activityID]
		rt.result.Assignment[activityID] = alt
		rest := make([]registry.Candidate, 0, len(alts))
		rest = append(rest, alts[:i]...)
		rest = append(rest, alts[i+1:]...)
		if old.Service.ID != "" {
			rest = append(rest, old)
		}
		rt.result.Alternates[activityID] = rest
		rt.substitutions++
		m.counter("qasom_adapt_substitutions_total",
			"Service substitutions applied by the adaptation manager.").Inc()
		return alt, nil
	}
	return registry.Candidate{}, fmt.Errorf("%w for activity %q", ErrNoSubstitute, activityID)
}

// FailureHandler wires substitution into the executor as the
// terminal-failure handler: each terminally failed attempt excludes the
// failed service and substitutes the next alternate. The executor's
// resilience policy has already spent its backoff budget on retryable
// failures by the time this runs; the failure class still distinguishes
// them — a binding lost to a flaky link (Retryable) stays eligible for
// re-selection later, while an application-level failure (Terminal)
// excludes the service for the rest of the run.
func (m *Manager) FailureHandler(rt *Runtime) exec.FailureHandler {
	excluded := make(map[registry.ServiceID]bool)
	var mu sync.Mutex
	return func(act *task.Activity, failed registry.Candidate, attempt int, class resilience.Class) (registry.Candidate, error) {
		mu.Lock()
		if class != resilience.Retryable {
			excluded[failed.Service.ID] = true
		}
		snapshot := make(map[registry.ServiceID]bool, len(excluded)+1)
		for k, v := range excluded {
			snapshot[k] = v
		}
		// Even a link-failed binding must not be handed straight back:
		// exclude it from THIS substitution without remembering it.
		snapshot[failed.Service.ID] = true
		mu.Unlock()
		return m.Substitute(rt, act.ID, snapshot)
	}
}

// CompletionHook returns the executor OnComplete callback that keeps the
// runtime's progress tracking up to date using monitor estimates for the
// observed QoS (falling back to the advertised vector).
func (m *Manager) CompletionHook(rt *Runtime) func(string) {
	return func(activityID string) {
		var measured qos.Vector
		rt.mu.Lock()
		bound, ok := rt.result.Assignment[activityID]
		rt.mu.Unlock()
		if ok {
			if m.Monitor != nil {
				if est, has := m.Monitor.Estimate(bound.Service.ID); has {
					measured = est
				}
			}
			if measured == nil {
				measured = bound.Vector
			}
		}
		rt.MarkCompleted(activityID, measured)
	}
}
