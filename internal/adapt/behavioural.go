package adapt

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"qasom/internal/core"
	"qasom/internal/graph"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/subidx"
	"qasom/internal/task"
)

// ErrNoAlternative is wrapped when no alternative behaviour of the task
// class can host the remaining work.
var ErrNoAlternative = errors.New("adapt: no alternative behaviour matches the remaining task")

// BehaviouralPlan is the outcome of behavioural adaptation: the chosen
// alternative behaviour, the part of it that still needs to run, the
// fresh selection over that part, and search diagnostics.
type BehaviouralPlan struct {
	// Alternative is the task-class behaviour the composition switches
	// to.
	Alternative *task.Task
	// NewTask is the remaining portion of Alternative to execute.
	NewTask *task.Task
	// Selection is QASSA's result over NewTask under the residual
	// constraints.
	Selection *core.Result
	// Residual is the constraint set NewTask was selected under.
	Residual qos.Constraints
	// MatchSteps counts homeomorphism search steps spent on the accepted
	// alternative.
	MatchSteps int
	// Staged reports whether the homeomorphism match came from the
	// substitution index's pre-staged alternates instead of a
	// failure-time search.
	Staged bool
}

// AdaptBehaviour runs the behavioural adaptation strategy of Chapter V:
//
//  1. compute the remaining subtask of the current behaviour;
//  2. look up the task class and iterate its alternative behaviours;
//  3. for each, decide by extended subgraph homeomorphism whether the
//     remaining work embeds into the alternative (semantic vertex
//     matching, vertex-disjoint paths, data constraints per options);
//  4. derive the alternative's still-needed portion, shrink the global
//     constraints by the QoS already consumed, and re-run QASSA on it;
//  5. return the first feasible plan (or the best-effort one).
//
// When the substitution index has pre-staged the match search for the
// current progress frontier, step 3 is skipped entirely: the staged
// matches are consumed and only the re-selection (which depends on the
// QoS consumed up to the failure) runs at failure time.
//
// On success the runtime is switched to the new behaviour and the
// substitution index (if any) is marked cold for rebuild against the new
// selection.
func (m *Manager) AdaptBehaviour(rt *Runtime) (*BehaviouralPlan, error) {
	if m.Repo == nil {
		return nil, fmt.Errorf("adapt: manager has no task-class repository")
	}
	if m.Selector == nil {
		return nil, fmt.Errorf("adapt: manager has no selector")
	}
	behaviour, completed := rt.progress()

	remaining, ok := behaviour.Remaining(completed)
	if !ok {
		return nil, fmt.Errorf("adapt: task already completed, nothing to adapt")
	}
	residual := ResidualConstraints(rt.Req.Properties, rt.Req.Constraints, rt.Consumed())

	// Staged fast path: the index pre-computed the homeomorphism matches
	// for this exact progress frontier on its background goroutine.
	if m.Index != nil {
		if staged := m.Index.Staged(frontierKey(behaviour, completed)); staged != nil && len(staged.Matches) > 0 {
			if plan, err := m.planFromStaged(rt, staged, residual); err == nil {
				return plan, nil
			}
			// The staged alternatives no longer select (services
			// vanished since staging): fall through to the full search.
		}
	}

	// Homeomorphism matching reconciles *partial progress* with an
	// alternative's structure. With no progress at all, every behaviour
	// of the class is acceptable by definition (they are declared
	// functionally equivalent), so the pattern is nil and matching is
	// skipped — the alternative replaces the task wholesale.
	var pattern *graph.Graph
	if remaining.Size() < behaviour.Size() {
		var err error
		pattern, err = graph.FromTask(remaining)
		if err != nil {
			return nil, fmt.Errorf("adapt: %w", err)
		}
	}

	class := m.classOf(behaviour)
	if class == nil {
		return nil, fmt.Errorf("adapt: no task class for behaviour %q (concept %q)",
			behaviour.Name, behaviour.Concept)
	}
	matchOpts := m.matchOptions()

	var fallback *BehaviouralPlan
	for _, alt := range class.Alternatives(behaviour.Name) {
		newTask, steps, err := matchAlternative(alt, pattern, matchOpts)
		if err != nil {
			continue
		}
		plan, err := m.buildPlan(rt, alt, newTask, steps, residual)
		if err != nil {
			continue
		}
		if plan.Selection.Feasible {
			m.installPlan(rt, plan)
			return plan, nil
		}
		if fallback == nil {
			fallback = plan
		}
	}
	if fallback != nil && !m.Options.RequireFeasible {
		m.installPlan(rt, fallback)
		return fallback, nil
	}
	return nil, fmt.Errorf("%w (behaviour %q, %d alternatives tried)",
		ErrNoAlternative, behaviour.Name, len(class.Alternatives(behaviour.Name)))
}

// planFromStaged replays the pre-staged matches through re-selection,
// applying the same feasible-first/best-effort policy as the full
// search.
func (m *Manager) planFromStaged(rt *Runtime, staged *subidx.StagedBehaviours, residual qos.Constraints) (*BehaviouralPlan, error) {
	var fallback *BehaviouralPlan
	for _, sm := range staged.Matches {
		plan, err := m.buildPlan(rt, sm.Alternative, sm.NewTask.Clone(), sm.MatchSteps, residual)
		if err != nil {
			continue
		}
		plan.Staged = true
		if plan.Selection.Feasible {
			m.installPlan(rt, plan)
			return plan, nil
		}
		if fallback == nil {
			fallback = plan
		}
	}
	if fallback != nil && !m.Options.RequireFeasible {
		m.installPlan(rt, fallback)
		return fallback, nil
	}
	return nil, fmt.Errorf("%w (staged, %d alternatives tried)", ErrNoAlternative, len(staged.Matches))
}

// installPlan switches the runtime to the plan's behaviour and
// invalidates the substitution index (the new selection has entirely new
// replacement lists).
func (m *Manager) installPlan(rt *Runtime, plan *BehaviouralPlan) {
	rt.switchBehaviour(plan.Alternative, plan.Selection)
	m.counter(behaviourSwitchMetric, behaviourSwitchHelp).Inc()
	if m.Index != nil {
		m.Index.MarkCold()
	}
}

// progress snapshots the current behaviour and completed set.
func (rt *Runtime) progress() (*task.Task, map[string]bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	completed := make(map[string]bool, len(rt.completed))
	for k, v := range rt.completed {
		completed[k] = v
	}
	return rt.Behaviour, completed
}

// classOf resolves the task class of a behaviour, falling back to the
// concept lookup.
func (m *Manager) classOf(behaviour *task.Task) *task.Class {
	class := m.Repo.ClassOf(behaviour.Name)
	if class == nil {
		if classes := m.Repo.ByConcept(behaviour.Concept); len(classes) > 0 {
			class = classes[0]
		}
	}
	return class
}

// matchOptions fills the registry's ontology into the configured match
// options when unset.
func (m *Manager) matchOptions() graph.MatchOptions {
	matchOpts := m.Options.Match
	if matchOpts.Ontology == nil && m.Registry != nil {
		matchOpts.Ontology = m.Registry.Ontology()
	}
	return matchOpts
}

// FrontierKey identifies the current progress frontier: the behaviour
// plus the (order-insensitive) set of completed activities. Staged
// behavioural alternates are valid exactly while this key is unchanged.
func (m *Manager) FrontierKey(rt *Runtime) string {
	behaviour, completed := rt.progress()
	return frontierKey(behaviour, completed)
}

func frontierKey(behaviour *task.Task, completed map[string]bool) string {
	ids := make([]string, 0, len(completed))
	for id, done := range completed {
		if done {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return behaviour.Name + "|" + strings.Join(ids, ",")
}

// StageBehaviours pre-computes the homeomorphism matches that
// AdaptBehaviour would otherwise search at failure time, for the current
// progress frontier. It runs on the substitution index's tracker
// goroutine, off the failure path. Re-selection is deliberately NOT
// staged: residual constraints depend on the QoS consumed up to the
// failure, which is unknown until it happens. A nil-Matches result means
// staging could not run (no repository, no class, task finished) and the
// consumer falls back to the full search.
func (m *Manager) StageBehaviours(rt *Runtime) *subidx.StagedBehaviours {
	behaviour, completed := rt.progress()
	out := &subidx.StagedBehaviours{Key: frontierKey(behaviour, completed)}
	if m.Repo == nil {
		return out
	}
	remaining, ok := behaviour.Remaining(completed)
	if !ok {
		return out
	}
	var pattern *graph.Graph
	if remaining.Size() < behaviour.Size() {
		p, err := graph.FromTask(remaining)
		if err != nil {
			return out
		}
		pattern = p
	}
	class := m.classOf(behaviour)
	if class == nil {
		return out
	}
	matchOpts := m.matchOptions()
	for _, alt := range class.Alternatives(behaviour.Name) {
		newTask, steps, err := matchAlternative(alt, pattern, matchOpts)
		if err != nil {
			continue
		}
		out.Matches = append(out.Matches, subidx.StagedMatch{
			Alternative: alt, NewTask: newTask, MatchSteps: steps,
		})
	}
	return out
}

// matchAlternative decides whether the remaining work (pattern) embeds
// into one alternative behaviour and derives the alternative's
// still-needed portion. Pure graph work — no registry, monitor or
// runtime access — so it can run either at failure time or pre-staged on
// the index's background goroutine.
func matchAlternative(alt *task.Task, pattern *graph.Graph, matchOpts graph.MatchOptions) (*task.Task, int, error) {
	if pattern == nil {
		// Fresh start: the whole alternative runs.
		return alt.Clone(), 0, nil
	}
	host, err := graph.FromTask(alt)
	if err != nil {
		return nil, 0, err
	}
	res, found, err := graph.FindHomeomorphism(pattern, host, matchOpts)
	if err != nil {
		return nil, 0, err
	}
	if !found {
		return nil, 0, fmt.Errorf("adapt: behaviour %q does not host the remaining task", alt.Name)
	}

	// The matched part of the alternative (vertex images + path
	// interiors) is the work still to do; everything else of the
	// alternative corresponds to already-completed work and is pruned.
	needed := make(map[string]bool)
	for _, hv := range res.Mapping {
		if v := host.Vertex(hv); v != nil && v.Kind == graph.KindActivity {
			needed[v.ActivityID] = true
		}
	}
	for _, path := range res.Paths {
		if len(path) < 3 {
			continue // direct edge or merged (empty) path: no interior
		}
		for _, hv := range path[1 : len(path)-1] {
			if v := host.Vertex(hv); v != nil && v.Kind == graph.KindActivity {
				needed[v.ActivityID] = true
			}
		}
	}
	doneB := make(map[string]bool)
	for _, a := range alt.Activities() {
		if !needed[a.ID] {
			doneB[a.ID] = true
		}
	}
	newTask, ok := alt.Remaining(doneB)
	if !ok {
		return nil, 0, fmt.Errorf("adapt: behaviour %q has no remaining work", alt.Name)
	}
	return newTask, res.Steps, nil
}

// buildPlan runs the re-selection over an alternative's remaining work
// under the residual constraints.
func (m *Manager) buildPlan(rt *Runtime, alt *task.Task, newTask *task.Task, matchSteps int, residual qos.Constraints) (*BehaviouralPlan, error) {
	newTask.Name = alt.Name
	newReq := &core.Request{
		Task:        newTask,
		Properties:  rt.Req.Properties,
		Constraints: residual,
		Weights:     rt.Req.Weights,
		Approach:    rt.Req.Approach,
		// Dependency rules survive the behaviour switch when both their
		// endpoints still exist in the remaining work; rules on pruned or
		// already-completed activities no longer constrain anything.
		Dependencies: retainedDeps(rt.Req.Dependencies, newTask),
	}
	candidates, err := m.candidatesFor(newTask, rt.Req.Properties)
	if err != nil {
		return nil, err
	}
	sel, err := m.Selector.Select(newReq, candidates)
	if err != nil {
		return nil, err
	}
	return &BehaviouralPlan{
		Alternative: alt,
		NewTask:     newTask,
		Selection:   sel,
		Residual:    residual,
		MatchSteps:  matchSteps,
	}, nil
}

// retainedDeps keeps the dependency rules whose activities all exist in
// the new behaviour's remaining work.
func retainedDeps(rules []core.Dependency, t *task.Task) []core.Dependency {
	if len(rules) == 0 {
		return nil
	}
	var out []core.Dependency
	for _, r := range rules {
		if t.ActivityByID(r.From) != nil && t.ActivityByID(r.To) != nil {
			out = append(out, r)
		}
	}
	return out
}

func (m *Manager) candidatesFor(t *task.Task, ps *qos.PropertySet) (map[string][]registry.Candidate, error) {
	if m.Registry == nil {
		return nil, fmt.Errorf("adapt: manager has no registry")
	}
	out := make(map[string][]registry.Candidate, t.Size())
	for _, a := range t.Activities() {
		cands := m.Registry.CandidatesForActivity(a, ps)
		if len(cands) == 0 {
			return nil, fmt.Errorf("adapt: no services for activity %q (concept %q)", a.ID, a.Concept)
		}
		out[a.ID] = cands
	}
	return out, nil
}

// ResidualConstraints shrinks global constraints by the QoS already
// consumed by the completed part of the composition: additive kinds
// (time, cost) subtract, probability kinds divide, bottleneck kinds pass
// through unchanged.
func ResidualConstraints(ps *qos.PropertySet, cs qos.Constraints, consumed qos.Vector) qos.Constraints {
	out := make(qos.Constraints, 0, len(cs))
	for _, c := range cs {
		j, ok := ps.Index(c.Property)
		if !ok || j >= len(consumed) {
			out = append(out, c)
			continue
		}
		bound := c.Bound
		switch ps.At(j).Kind {
		case qos.KindTime, qos.KindCost:
			bound -= consumed[j]
			if bound < 0 {
				bound = 0
			}
		case qos.KindProbability:
			if consumed[j] > 0 && consumed[j] < 1 {
				bound /= consumed[j]
				if bound > 1 {
					bound = 1
				}
			}
		default: // KindBottleneck: unchanged
		}
		out = append(out, qos.Constraint{Property: c.Property, Bound: bound})
	}
	return out
}
