package adapt

import (
	"errors"
	"fmt"

	"qasom/internal/core"
	"qasom/internal/graph"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/task"
)

// ErrNoAlternative is wrapped when no alternative behaviour of the task
// class can host the remaining work.
var ErrNoAlternative = errors.New("adapt: no alternative behaviour matches the remaining task")

// BehaviouralPlan is the outcome of behavioural adaptation: the chosen
// alternative behaviour, the part of it that still needs to run, the
// fresh selection over that part, and search diagnostics.
type BehaviouralPlan struct {
	// Alternative is the task-class behaviour the composition switches
	// to.
	Alternative *task.Task
	// NewTask is the remaining portion of Alternative to execute.
	NewTask *task.Task
	// Selection is QASSA's result over NewTask under the residual
	// constraints.
	Selection *core.Result
	// Residual is the constraint set NewTask was selected under.
	Residual qos.Constraints
	// MatchSteps counts homeomorphism search steps spent on the accepted
	// alternative.
	MatchSteps int
}

// AdaptBehaviour runs the behavioural adaptation strategy of Chapter V:
//
//  1. compute the remaining subtask of the current behaviour;
//  2. look up the task class and iterate its alternative behaviours;
//  3. for each, decide by extended subgraph homeomorphism whether the
//     remaining work embeds into the alternative (semantic vertex
//     matching, vertex-disjoint paths, data constraints per options);
//  4. derive the alternative's still-needed portion, shrink the global
//     constraints by the QoS already consumed, and re-run QASSA on it;
//  5. return the first feasible plan (or the best-effort one).
//
// On success the runtime is switched to the new behaviour.
func (m *Manager) AdaptBehaviour(rt *Runtime) (*BehaviouralPlan, error) {
	if m.Repo == nil {
		return nil, fmt.Errorf("adapt: manager has no task-class repository")
	}
	if m.Selector == nil {
		return nil, fmt.Errorf("adapt: manager has no selector")
	}
	rt.mu.Lock()
	completed := make(map[string]bool, len(rt.completed))
	for k, v := range rt.completed {
		completed[k] = v
	}
	behaviour := rt.Behaviour
	rt.mu.Unlock()

	remaining, ok := behaviour.Remaining(completed)
	if !ok {
		return nil, fmt.Errorf("adapt: task already completed, nothing to adapt")
	}
	// Homeomorphism matching reconciles *partial progress* with an
	// alternative's structure. With no progress at all, every behaviour
	// of the class is acceptable by definition (they are declared
	// functionally equivalent), so the pattern is nil and matching is
	// skipped — the alternative replaces the task wholesale.
	var pattern *graph.Graph
	if remaining.Size() < behaviour.Size() {
		var err error
		pattern, err = graph.FromTask(remaining)
		if err != nil {
			return nil, fmt.Errorf("adapt: %w", err)
		}
	}

	class := m.Repo.ClassOf(behaviour.Name)
	if class == nil {
		classes := m.Repo.ByConcept(behaviour.Concept)
		if len(classes) == 0 {
			return nil, fmt.Errorf("adapt: no task class for behaviour %q (concept %q)",
				behaviour.Name, behaviour.Concept)
		}
		class = classes[0]
	}

	matchOpts := m.Options.Match
	if matchOpts.Ontology == nil && m.Registry != nil {
		matchOpts.Ontology = m.Registry.Ontology()
	}

	residual := ResidualConstraints(rt.Req.Properties, rt.Req.Constraints, rt.Consumed())

	var fallback *BehaviouralPlan
	for _, alt := range class.Alternatives(behaviour.Name) {
		plan, err := m.planAlternative(rt, alt, pattern, matchOpts, residual)
		if err != nil {
			continue
		}
		if plan.Selection.Feasible {
			rt.switchBehaviour(plan.Alternative, plan.Selection)
			m.counter(behaviourSwitchMetric, behaviourSwitchHelp).Inc()
			return plan, nil
		}
		if fallback == nil {
			fallback = plan
		}
	}
	if fallback != nil && !m.Options.RequireFeasible {
		rt.switchBehaviour(fallback.Alternative, fallback.Selection)
		m.counter(behaviourSwitchMetric, behaviourSwitchHelp).Inc()
		return fallback, nil
	}
	return nil, fmt.Errorf("%w (behaviour %q, %d alternatives tried)",
		ErrNoAlternative, behaviour.Name, len(class.Alternatives(behaviour.Name)))
}

// planAlternative checks one alternative behaviour and, on a match,
// builds the re-selection plan.
func (m *Manager) planAlternative(rt *Runtime, alt *task.Task, pattern *graph.Graph,
	matchOpts graph.MatchOptions, residual qos.Constraints) (*BehaviouralPlan, error) {
	var newTask *task.Task
	matchSteps := 0
	if pattern == nil {
		// Fresh start: the whole alternative runs.
		newTask = alt.Clone()
	} else {
		host, err := graph.FromTask(alt)
		if err != nil {
			return nil, err
		}
		res, found, err := graph.FindHomeomorphism(pattern, host, matchOpts)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("adapt: behaviour %q does not host the remaining task", alt.Name)
		}
		matchSteps = res.Steps

		// The matched part of the alternative (vertex images + path
		// interiors) is the work still to do; everything else of the
		// alternative corresponds to already-completed work and is pruned.
		needed := make(map[string]bool)
		for _, hv := range res.Mapping {
			if v := host.Vertex(hv); v != nil && v.Kind == graph.KindActivity {
				needed[v.ActivityID] = true
			}
		}
		for _, path := range res.Paths {
			if len(path) < 3 {
				continue // direct edge or merged (empty) path: no interior
			}
			for _, hv := range path[1 : len(path)-1] {
				if v := host.Vertex(hv); v != nil && v.Kind == graph.KindActivity {
					needed[v.ActivityID] = true
				}
			}
		}
		doneB := make(map[string]bool)
		for _, a := range alt.Activities() {
			if !needed[a.ID] {
				doneB[a.ID] = true
			}
		}
		var ok bool
		newTask, ok = alt.Remaining(doneB)
		if !ok {
			return nil, fmt.Errorf("adapt: behaviour %q has no remaining work", alt.Name)
		}
	}
	newTask.Name = alt.Name

	newReq := &core.Request{
		Task:        newTask,
		Properties:  rt.Req.Properties,
		Constraints: residual,
		Weights:     rt.Req.Weights,
		Approach:    rt.Req.Approach,
	}
	candidates, err := m.candidatesFor(newTask, rt.Req.Properties)
	if err != nil {
		return nil, err
	}
	sel, err := m.Selector.Select(newReq, candidates)
	if err != nil {
		return nil, err
	}
	return &BehaviouralPlan{
		Alternative: alt,
		NewTask:     newTask,
		Selection:   sel,
		Residual:    residual,
		MatchSteps:  matchSteps,
	}, nil
}

func (m *Manager) candidatesFor(t *task.Task, ps *qos.PropertySet) (map[string][]registry.Candidate, error) {
	if m.Registry == nil {
		return nil, fmt.Errorf("adapt: manager has no registry")
	}
	out := make(map[string][]registry.Candidate, t.Size())
	for _, a := range t.Activities() {
		cands := m.Registry.CandidatesForActivity(a, ps)
		if len(cands) == 0 {
			return nil, fmt.Errorf("adapt: no services for activity %q (concept %q)", a.ID, a.Concept)
		}
		out[a.ID] = cands
	}
	return out, nil
}

// ResidualConstraints shrinks global constraints by the QoS already
// consumed by the completed part of the composition: additive kinds
// (time, cost) subtract, probability kinds divide, bottleneck kinds pass
// through unchanged.
func ResidualConstraints(ps *qos.PropertySet, cs qos.Constraints, consumed qos.Vector) qos.Constraints {
	out := make(qos.Constraints, 0, len(cs))
	for _, c := range cs {
		j, ok := ps.Index(c.Property)
		if !ok || j >= len(consumed) {
			out = append(out, c)
			continue
		}
		bound := c.Bound
		switch ps.At(j).Kind {
		case qos.KindTime, qos.KindCost:
			bound -= consumed[j]
			if bound < 0 {
				bound = 0
			}
		case qos.KindProbability:
			if consumed[j] > 0 && consumed[j] < 1 {
				bound /= consumed[j]
				if bound > 1 {
					bound = 1
				}
			}
		default: // KindBottleneck: unchanged
		}
		out = append(out, qos.Constraint{Property: c.Property, Bound: bound})
	}
	return out
}
