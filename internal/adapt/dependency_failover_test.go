package adapt

import (
	"errors"
	"testing"

	"qasom/internal/core"
	"qasom/internal/monitor"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/subidx"
)

// depFixture is the shopping fixture with dependency rules: any browse
// binding requires order ∈ {order-0, order-1}, and order-0 excludes
// pay-1.
func depFixture(t *testing.T) (*Manager, *Runtime, *registry.Registry, *core.DependencySet) {
	t.Helper()
	onto := semantics.PervasiveWithScenarios()
	reg := registry.New(onto)
	publish(t, reg, semantics.BrowseCatalog, "browse", 4)
	publish(t, reg, semantics.OrderItem, "order", 4)
	publish(t, reg, semantics.CardPayment, "pay", 4)

	class := shoppingBehaviours()
	req := &core.Request{
		Task:       class.Behaviours[0],
		Properties: stdPS(),
		Dependencies: []core.Dependency{
			{Kind: core.DepRequires, From: "browse", To: "order",
				ToServices: []registry.ServiceID{"order-0", "order-1"}},
			{Kind: core.DepExcludes, From: "order", To: "pay", FromService: "order-0",
				ToServices: []registry.ServiceID{"pay-1"}},
		},
	}
	cands := make(map[string][]registry.Candidate)
	for _, a := range req.Task.Activities() {
		cands[a.ID] = reg.CandidatesForActivity(a, req.Properties)
	}
	sel := core.NewSelector(core.Options{})
	res, err := sel.Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("dep fixture selection should be feasible")
	}
	ds, err := req.CompiledDependencies()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(req, res)
	m := &Manager{Registry: reg, Selector: sel}
	return m, rt, reg, ds
}

// depViolations counts rule violations of the runtime's live assignment.
func depViolations(rt *Runtime, ds *core.DependencySet) int {
	n := 0
	rt.View(func(res *core.Result) {
		n = ds.Violations(func(id string) (registry.Candidate, bool) {
			c, ok := res.Assignment[id]
			return c, ok
		})
	})
	return n
}

// TestDifferentialFailoverNeverViolatesDependencies drives the reactive
// failover path through every substitution it can make and asserts the
// dependency invariant after each: the assignment never violates a rule,
// and exhaustion — not an inadmissible binding — is what ends the chain.
func TestDifferentialFailoverNeverViolatesDependencies(t *testing.T) {
	m, rt, _, ds := depFixture(t)
	if n := depViolations(rt, ds); n != 0 {
		t.Fatalf("selection starts with %d dependency violations", n)
	}

	// order may only ever bind order-0 or order-1: fail it until the
	// admissible pool is exhausted.
	exclude := map[registry.ServiceID]bool{}
	admissible := map[registry.ServiceID]bool{"order-0": true, "order-1": true}
	first := boundID(rt, "order")
	if !admissible[first] {
		t.Fatalf("selection bound order to inadmissible %s", first)
	}
	exclude[first] = true
	sub, err := m.Substitute(rt, "order", exclude)
	if err != nil {
		t.Fatalf("first order failover: %v", err)
	}
	if !admissible[sub.Service.ID] {
		t.Fatalf("failover bound order to inadmissible %s", sub.Service.ID)
	}
	if n := depViolations(rt, ds); n != 0 {
		t.Fatalf("after order failover: %d dependency violations", n)
	}
	// Both admissible services spent: the requires rule must make the
	// next failover fail even though order-2/order-3 are alive and
	// healthy.
	exclude[sub.Service.ID] = true
	if _, err := m.Substitute(rt, "order", exclude); !errors.Is(err, ErrNoSubstitute) {
		t.Fatalf("exhausted admissible pool: got %v, want ErrNoSubstitute", err)
	}
	if n := depViolations(rt, ds); n != 0 {
		t.Fatalf("failed failover left %d dependency violations", n)
	}

	// While order-0 is bound, pay failovers must never land on pay-1.
	if cur := boundID(rt, "order"); cur != "order-0" {
		// Rotate back: exclude only the currently bound one.
		if _, err := m.Substitute(rt, "order", map[registry.ServiceID]bool{cur: true}); err != nil {
			t.Fatalf("rotating order back: %v", err)
		}
	}
	if cur := boundID(rt, "order"); cur != "order-0" {
		t.Fatalf("order bound to %s, want order-0", cur)
	}
	payExclude := map[registry.ServiceID]bool{}
	for i := 0; i < 3; i++ {
		payExclude[boundID(rt, "pay")] = true
		sub, err := m.Substitute(rt, "pay", payExclude)
		if err != nil {
			break // pool exhausted, acceptable
		}
		if sub.Service.ID == "pay-1" {
			t.Fatal("failover bound pay-1 while order-0 excludes it")
		}
		if n := depViolations(rt, ds); n != 0 {
			t.Fatalf("pay failover %d left %d dependency violations", i, n)
		}
	}
}

// TestIndexRespectsDependencyMask proves the indexed failover path keeps
// the dependency invariant: the rebuilt index publishes no inadmissible
// replacement, index-served substitutions stay admissible, and a stale
// index entry is revalidated at commit time rather than installed.
func TestIndexRespectsDependencyMask(t *testing.T) {
	m, rt, reg, ds := depFixture(t)
	mon := monitor.New(stdPS(), monitor.Options{})
	m.Monitor = mon
	tr := subidx.NewTracker(reg, mon, subidx.Options{})
	t.Cleanup(tr.Close)
	m.Index = tr.Track(rt)
	m.Index.BuildNow()

	// The published replacement list for order may only contain the
	// requires-admissible services.
	for _, r := range m.Index.Replacements("order") {
		if r.Service != "order-0" && r.Service != "order-1" {
			t.Fatalf("index published inadmissible replacement %s for order", r.Service)
		}
	}
	// And with order-0 bound, pay-1 must not be published for pay.
	if boundID(rt, "order") == "order-0" {
		for _, r := range m.Index.Replacements("pay") {
			if r.Service == "pay-1" {
				t.Fatal("index published pay-1 while order-0 excludes it")
			}
		}
	}

	// Index-served failovers keep the invariant across a burst.
	for i := 0; i < 4; i++ {
		for _, act := range []string{"order", "pay", "browse"} {
			cur := boundID(rt, act)
			sub, err := m.Substitute(rt, act, map[registry.ServiceID]bool{cur: true})
			if err != nil {
				continue // exhausted is fine; invariant is what matters
			}
			if act == "order" && sub.Service.ID != "order-0" && sub.Service.ID != "order-1" {
				t.Fatalf("indexed failover bound inadmissible %s to order", sub.Service.ID)
			}
			if n := depViolations(rt, ds); n != 0 {
				t.Fatalf("round %d %s: %d dependency violations", i, act, n)
			}
		}
	}
	stats := rt.FailoverStats()
	if stats.IndexHits == 0 {
		t.Fatal("expected at least one index-served failover")
	}
}
