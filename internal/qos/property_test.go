package qos

import (
	"math"
	"testing"

	"qasom/internal/semantics"
)

func TestPropertyValidate(t *testing.T) {
	tests := []struct {
		name    string
		prop    *Property
		wantErr bool
	}{
		{"valid", &Property{Name: "rt", Direction: Minimized, Kind: KindTime}, false},
		{"nil", nil, true},
		{"no name", &Property{Direction: Minimized, Kind: KindTime}, true},
		{"bad direction", &Property{Name: "x", Kind: KindTime}, true},
		{"bad kind", &Property{Name: "x", Direction: Maximized}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.prop.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPropertyBetterWorse(t *testing.T) {
	rt := &Property{Name: "rt", Direction: Minimized, Kind: KindTime}
	av := &Property{Name: "av", Direction: Maximized, Kind: KindProbability}
	if !rt.Better(10, 20) || rt.Better(20, 10) {
		t.Error("minimized: smaller should be better")
	}
	if !av.Better(0.9, 0.8) || av.Better(0.8, 0.9) {
		t.Error("maximized: larger should be better")
	}
	if !rt.Worse(20, 10) {
		t.Error("Worse should mirror Better")
	}
}

func TestUnitConvert(t *testing.T) {
	got, err := Convert(1.5, Seconds, Milliseconds)
	if err != nil || got != 1500 {
		t.Errorf("Convert(1.5 s → ms) = %v, %v; want 1500", got, err)
	}
	got, err = Convert(250, Cents, Euros)
	if err != nil || math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Convert(250 ct → EUR) = %v, %v; want 2.5", got, err)
	}
	got, err = Convert(95, Percent, Ratio)
	if err != nil || math.Abs(got-0.95) > 1e-12 {
		t.Errorf("Convert(95%% → ratio) = %v, %v; want 0.95", got, err)
	}
	if _, err := Convert(1, Unit{Name: "bad"}, Euros); err == nil {
		t.Error("zero-factor unit should error")
	}
}

func TestNewPropertySet(t *testing.T) {
	if _, err := NewPropertySet(); err == nil {
		t.Error("empty set should error")
	}
	p := &Property{Name: "rt", Direction: Minimized, Kind: KindTime}
	if _, err := NewPropertySet(p, p); err == nil {
		t.Error("duplicate names should error")
	}
	ps, err := NewPropertySet(p)
	if err != nil {
		t.Fatalf("NewPropertySet: %v", err)
	}
	// The set copies its inputs: later mutation of p must not leak in.
	p.Direction = Maximized
	if ps.At(0).Direction != Minimized {
		t.Error("property set should copy properties at the boundary")
	}
}

func TestStandardAndExtendedSets(t *testing.T) {
	std := StandardSet()
	if std.Len() != 5 {
		t.Fatalf("StandardSet has %d properties, want 5", std.Len())
	}
	ext := ExtendedSet()
	if ext.Len() != 8 {
		t.Fatalf("ExtendedSet has %d properties, want 8", ext.Len())
	}
	j, ok := std.Index("availability")
	if !ok || std.At(j).Direction != Maximized || std.At(j).Kind != KindProbability {
		t.Error("availability should be a maximized probability")
	}
	j, ok = std.IndexByConcept(semantics.ResponseTime)
	if !ok || std.At(j).Name != "responseTime" {
		t.Error("IndexByConcept(ResponseTime) should find responseTime")
	}
	names := ext.Names()
	if names[0] != "responseTime" || names[7] != "energyCost" {
		t.Errorf("unexpected ExtendedSet order: %v", names)
	}
}

func TestSubSet(t *testing.T) {
	ext := ExtendedSet()
	sub, err := ext.SubSet(3)
	if err != nil || sub.Len() != 3 {
		t.Fatalf("SubSet(3) = %v, %v", sub, err)
	}
	if _, err := ext.SubSet(0); err == nil {
		t.Error("SubSet(0) should error")
	}
	if _, err := ext.SubSet(99); err == nil {
		t.Error("SubSet(99) should error")
	}
}

func TestIdentityElements(t *testing.T) {
	if identity(&Property{Kind: KindTime}) != 0 {
		t.Error("time identity should be 0")
	}
	if identity(&Property{Kind: KindProbability}) != 1 {
		t.Error("probability identity should be 1")
	}
	if !math.IsInf(identity(&Property{Kind: KindBottleneck}), 1) {
		t.Error("bottleneck identity should be +Inf")
	}
}

func TestEnumStrings(t *testing.T) {
	if Minimized.String() != "minimized" || Maximized.String() != "maximized" {
		t.Error("direction strings")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Error("unknown direction string")
	}
	if KindTime.String() != "time" || KindCost.String() != "cost" ||
		KindProbability.String() != "probability" || KindBottleneck.String() != "bottleneck" {
		t.Error("kind strings")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string")
	}
}
