package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestTableIV1 verifies every cell of Table IV.1: the aggregation formula
// for each (aggregation class, composition pattern) pair.
func TestTableIV1(t *testing.T) {
	timeP := &Property{Name: "t", Direction: Minimized, Kind: KindTime}
	costP := &Property{Name: "c", Direction: Minimized, Kind: KindCost}
	probP := &Property{Name: "p", Direction: Maximized, Kind: KindProbability}
	bottP := &Property{Name: "b", Direction: Maximized, Kind: KindBottleneck}
	vals := []float64{10, 20, 5}
	probs := []float64{0.9, 0.8, 0.5}
	loop := Loop{Min: 1, Max: 4, Expected: 2}

	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"time/sequence = sum", AggregateSequence(timeP, vals), 35},
		{"cost/sequence = sum", AggregateSequence(costP, vals), 35},
		{"prob/sequence = product", AggregateSequence(probP, probs), 0.36},
		{"bottleneck/sequence = min", AggregateSequence(bottP, vals), 5},

		{"time/parallel = max", AggregateParallel(timeP, vals), 20},
		{"cost/parallel = sum", AggregateParallel(costP, vals), 35},
		{"prob/parallel = product", AggregateParallel(probP, probs), 0.36},
		{"bottleneck/parallel = min", AggregateParallel(bottP, vals), 5},

		{"time/loop = k·x (pessimistic k=max)", AggregateLoop(timeP, 10, loop, Pessimistic), 40},
		{"time/loop optimistic k=min", AggregateLoop(timeP, 10, loop, Optimistic), 10},
		{"time/loop mean k=expected", AggregateLoop(timeP, 10, loop, MeanValue), 20},
		{"cost/loop = k·x", AggregateLoop(costP, 3, loop, Pessimistic), 12},
		{"prob/loop = x^k", AggregateLoop(probP, 0.9, loop, Pessimistic), math.Pow(0.9, 4)},
		{"bottleneck/loop = x", AggregateLoop(bottP, 7, loop, Pessimistic), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !approxEq(tt.got, tt.want) {
				t.Errorf("got %g, want %g", tt.got, tt.want)
			}
		})
	}
}

func TestAggregateChoiceApproaches(t *testing.T) {
	timeP := &Property{Name: "t", Direction: Minimized, Kind: KindTime}
	probP := &Property{Name: "p", Direction: Maximized, Kind: KindProbability}
	vals := []float64{10, 30, 20}
	weights := []float64{0.5, 0.25, 0.25}

	tests := []struct {
		name  string
		prop  *Property
		probs []float64
		a     Approach
		want  float64
	}{
		{"pessimistic minimized keeps worst (max)", timeP, nil, Pessimistic, 30},
		{"optimistic minimized keeps best (min)", timeP, nil, Optimistic, 10},
		{"mean uniform", timeP, nil, MeanValue, 20},
		{"mean weighted", timeP, weights, MeanValue, 0.5*10 + 0.25*30 + 0.25*20},
		{"pessimistic maximized keeps worst (min)", probP, nil, Pessimistic, 10},
		{"optimistic maximized keeps best (max)", probP, nil, Optimistic, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AggregateChoice(tt.prop, vals, tt.probs, tt.a); !approxEq(got, tt.want) {
				t.Errorf("got %g, want %g", got, tt.want)
			}
		})
	}
}

func TestAggregateChoiceEdgeCases(t *testing.T) {
	timeP := &Property{Name: "t", Direction: Minimized, Kind: KindTime}
	if got := AggregateChoice(timeP, nil, nil, Pessimistic); got != 0 {
		t.Errorf("empty choice should yield identity, got %g", got)
	}
	// Mismatched probabilities fall back to uniform mean.
	if got := AggregateChoice(timeP, []float64{10, 20}, []float64{1}, MeanValue); !approxEq(got, 15) {
		t.Errorf("mismatched probs: got %g, want 15", got)
	}
	// All-zero probabilities fall back to the first value.
	if got := AggregateChoice(timeP, []float64{10, 20}, []float64{0, 0}, MeanValue); !approxEq(got, 10) {
		t.Errorf("zero probs: got %g, want 10", got)
	}
}

func TestLoopIterations(t *testing.T) {
	l := Loop{Min: 2, Max: 6}
	if got := l.Iterations(Pessimistic); got != 6 {
		t.Errorf("pessimistic iterations = %g, want 6", got)
	}
	if got := l.Iterations(Optimistic); got != 2 {
		t.Errorf("optimistic iterations = %g, want 2", got)
	}
	if got := l.Iterations(MeanValue); got != 4 {
		t.Errorf("default mean iterations = %g, want 4", got)
	}
	l.Expected = 3.5
	if got := l.Iterations(MeanValue); got != 3.5 {
		t.Errorf("explicit mean iterations = %g, want 3.5", got)
	}
}

func TestAggregateLoopNegativeGuard(t *testing.T) {
	timeP := &Property{Name: "t", Direction: Minimized, Kind: KindTime}
	if got := AggregateLoop(timeP, 10, Loop{Min: -3, Max: -1}, Pessimistic); got != 0 {
		t.Errorf("negative iteration counts should clamp to 0, got %g", got)
	}
}

func TestVectorAggregators(t *testing.T) {
	ps := StandardSet() // responseTime, price, availability, reliability, throughput
	a := Vector{100, 2, 0.9, 0.95, 50}
	b := Vector{200, 3, 0.8, 0.90, 30}

	seq := AggregateSequenceVec(ps, []Vector{a, b})
	want := Vector{300, 5, 0.72, 0.855, 30}
	if !seq.Equal(want, 1e-9) {
		t.Errorf("sequence vec = %v, want %v", seq, want)
	}

	par := AggregateParallelVec(ps, []Vector{a, b})
	want = Vector{200, 5, 0.72, 0.855, 30}
	if !par.Equal(want, 1e-9) {
		t.Errorf("parallel vec = %v, want %v", par, want)
	}

	cho := AggregateChoiceVec(ps, []Vector{a, b}, nil, Pessimistic)
	want = Vector{200, 3, 0.8, 0.90, 30}
	if !cho.Equal(want, 1e-9) {
		t.Errorf("pessimistic choice vec = %v, want %v", cho, want)
	}

	lp := AggregateLoopVec(ps, a, Loop{Min: 2, Max: 2}, MeanValue)
	want = Vector{200, 4, 0.81, 0.95 * 0.95, 50}
	if !lp.Equal(want, 1e-9) {
		t.Errorf("loop vec = %v, want %v", lp, want)
	}
}

// Property-based invariants of the aggregation algebra.

func clampProb(x float64) float64 {
	x = math.Abs(x)
	x -= math.Floor(x)
	return x
}

func TestQuickSequenceOrderInvariance(t *testing.T) {
	timeP := &Property{Name: "t", Direction: Minimized, Kind: KindTime}
	probP := &Property{Name: "p", Direction: Maximized, Kind: KindProbability}
	f := func(a, b, c float64) bool {
		a, b, c = math.Mod(a, 1e6), math.Mod(b, 1e6), math.Mod(c, 1e6)
		s1 := AggregateSequence(timeP, []float64{a, b, c})
		s2 := AggregateSequence(timeP, []float64{c, a, b})
		if math.Abs(s1-s2) > 1e-6*(1+math.Abs(s1)) {
			return false
		}
		pa, pb, pc := clampProb(a), clampProb(b), clampProb(c)
		p1 := AggregateSequence(probP, []float64{pa, pb, pc})
		p2 := AggregateSequence(probP, []float64{pc, pb, pa})
		return math.Abs(p1-p2) <= 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPessimisticBoundsOptimistic(t *testing.T) {
	// For any branch values, the pessimistic choice is never better than
	// the optimistic one, and the mean lies between them.
	for _, dir := range []Direction{Minimized, Maximized} {
		p := &Property{Name: "x", Direction: dir, Kind: KindTime}
		f := func(a, b, c float64) bool {
			vals := []float64{math.Mod(a, 1e6), math.Mod(b, 1e6), math.Mod(c, 1e6)}
			worst := AggregateChoice(p, vals, nil, Pessimistic)
			best := AggregateChoice(p, vals, nil, Optimistic)
			mean := AggregateChoice(p, vals, nil, MeanValue)
			if p.Better(worst, best) {
				return false
			}
			const eps = 1e-9
			if p.Better(mean, best) && math.Abs(mean-best) > eps {
				return false
			}
			if p.Better(worst, mean) && math.Abs(mean-worst) > eps {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("direction %v: %v", dir, err)
		}
	}
}

func TestQuickProbabilityStaysInUnitInterval(t *testing.T) {
	probP := &Property{Name: "p", Direction: Maximized, Kind: KindProbability}
	f := func(a, b, c float64, k uint8) bool {
		vals := []float64{clampProb(a), clampProb(b), clampProb(c)}
		seq := AggregateSequence(probP, vals)
		par := AggregateParallel(probP, vals)
		lp := AggregateLoop(probP, vals[0], Loop{Min: 0, Max: int(k % 16)}, Pessimistic)
		for _, x := range []float64{seq, par, lp} {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproachStrings(t *testing.T) {
	if Pessimistic.String() != "pessimistic" || Optimistic.String() != "optimistic" ||
		MeanValue.String() != "mean-value" {
		t.Error("approach strings")
	}
	if Approach(9).String() != "Approach(9)" {
		t.Error("unknown approach string")
	}
	if len(Approaches()) != 3 {
		t.Error("Approaches should list all three")
	}
}
