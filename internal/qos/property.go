// Package qos implements the operational QoS model of QASOM: typed QoS
// properties bound to the semantic model, QoS vectors and unit
// conversion, direction-aware min–max normalization, weighted utility
// functions, user constraints, and the pattern-wise aggregation formulas
// of Table IV.1 under the three aggregation approaches (pessimistic,
// optimistic and mean-value) compared in Figs. VI.7/VI.8.
package qos

import (
	"fmt"
	"math"

	"qasom/internal/semantics"
)

// Direction states whether smaller or larger values of a property are
// better for the user.
type Direction int

// Directions.
const (
	// Minimized means lower values are better (response time, price, ...).
	Minimized Direction = iota + 1
	// Maximized means higher values are better (availability, throughput, ...).
	Maximized
)

// String returns "minimized" or "maximized".
func (d Direction) String() string {
	switch d {
	case Minimized:
		return "minimized"
	case Maximized:
		return "maximized"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Kind is the aggregation class of a property: it decides which formula of
// Table IV.1 applies per composition pattern.
type Kind int

// Aggregation classes.
const (
	// KindTime aggregates like a duration: sum over sequences, max over
	// parallel branches, k·x over loops.
	KindTime Kind = iota + 1
	// KindCost aggregates like a monetary cost: sum over sequences and
	// parallel branches, k·x over loops.
	KindCost
	// KindProbability aggregates like a success probability: product over
	// sequences and parallel branches, x^k over loops.
	KindProbability
	// KindBottleneck aggregates like a capacity: min over sequences and
	// parallel branches, unchanged over loops.
	KindBottleneck
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindTime:
		return "time"
	case KindCost:
		return "cost"
	case KindProbability:
		return "probability"
	case KindBottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit is a measurement unit with a conversion factor to the property's
// canonical unit (canonical = value × Factor).
type Unit struct {
	Name    string
	Concept semantics.ConceptID
	Factor  float64
}

// Canonical units.
var (
	Milliseconds = Unit{Name: "ms", Concept: semantics.UnitMillisecond, Factor: 1}
	Seconds      = Unit{Name: "s", Concept: semantics.UnitSecond, Factor: 1000}
	Euros        = Unit{Name: "EUR", Concept: semantics.UnitEuro, Factor: 1}
	Cents        = Unit{Name: "ct", Concept: semantics.UnitCent, Factor: 0.01}
	Ratio        = Unit{Name: "ratio", Concept: semantics.UnitRatio, Factor: 1}
	Percent      = Unit{Name: "%", Concept: semantics.UnitPercent, Factor: 0.01}
	PerSecond    = Unit{Name: "req/s", Concept: semantics.UnitRequestPerSec, Factor: 1}
	Unitless     = Unit{Name: "", Concept: "", Factor: 1}
)

// Convert converts a value expressed in unit from into unit to.
func Convert(value float64, from, to Unit) (float64, error) {
	if from.Factor == 0 || to.Factor == 0 {
		return 0, fmt.Errorf("qos: unit with zero conversion factor (%q → %q)", from.Name, to.Name)
	}
	return value * from.Factor / to.Factor, nil
}

// Property describes one QoS dimension: its semantic concept, direction,
// aggregation class and canonical unit.
type Property struct {
	// Name is the short identifier used in vectors and constraints.
	Name string
	// Concept ties the property to the semantic QoS model (for matching
	// heterogeneous vocabularies).
	Concept semantics.ConceptID
	// Direction states whether the property is minimized or maximized.
	Direction Direction
	// Kind selects the aggregation formulas of Table IV.1.
	Kind Kind
	// Unit is the canonical unit values are expressed in.
	Unit Unit
}

// Validate reports whether the property is fully specified.
func (p *Property) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("qos: nil property")
	case p.Name == "":
		return fmt.Errorf("qos: property without name")
	case p.Direction != Minimized && p.Direction != Maximized:
		return fmt.Errorf("qos: property %q has invalid direction %d", p.Name, int(p.Direction))
	case p.Kind < KindTime || p.Kind > KindBottleneck:
		return fmt.Errorf("qos: property %q has invalid kind %d", p.Name, int(p.Kind))
	}
	return nil
}

// Better reports whether value a is strictly better than b under the
// property's direction.
func (p *Property) Better(a, b float64) bool {
	if p.Direction == Minimized {
		return a < b
	}
	return a > b
}

// Worse reports whether value a is strictly worse than b under the
// property's direction.
func (p *Property) Worse(a, b float64) bool { return p.Better(b, a) }

// Standard properties of the evaluation workloads. The first five mirror
// the properties the thesis experiments with; the remainder extend the set
// so that the constraint-count sweep (Fig. VI.5b) can reach eight
// constraints.
func standardProperties() []*Property {
	return []*Property{
		{Name: "responseTime", Concept: semantics.ResponseTime, Direction: Minimized, Kind: KindTime, Unit: Milliseconds},
		{Name: "price", Concept: semantics.Price, Direction: Minimized, Kind: KindCost, Unit: Euros},
		{Name: "availability", Concept: semantics.Availability, Direction: Maximized, Kind: KindProbability, Unit: Ratio},
		{Name: "reliability", Concept: semantics.Reliability, Direction: Maximized, Kind: KindProbability, Unit: Ratio},
		{Name: "throughput", Concept: semantics.Throughput, Direction: Maximized, Kind: KindBottleneck, Unit: PerSecond},
		{Name: "jitter", Concept: semantics.Jitter, Direction: Minimized, Kind: KindTime, Unit: Milliseconds},
		{Name: "accuracy", Concept: semantics.Accuracy, Direction: Maximized, Kind: KindProbability, Unit: Ratio},
		{Name: "energyCost", Concept: semantics.BatteryLife, Direction: Minimized, Kind: KindCost, Unit: Unitless},
	}
}

// PropertySet is an immutable ordered collection of properties; vectors
// and weights are float slices aligned to it.
type PropertySet struct {
	props   []*Property
	byName  map[string]int
	concept map[semantics.ConceptID]int
}

// NewPropertySet builds a property set, validating every property and
// rejecting duplicate names.
func NewPropertySet(props ...*Property) (*PropertySet, error) {
	ps := &PropertySet{
		props:   make([]*Property, 0, len(props)),
		byName:  make(map[string]int, len(props)),
		concept: make(map[semantics.ConceptID]int, len(props)),
	}
	for _, p := range props {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := ps.byName[p.Name]; dup {
			return nil, fmt.Errorf("qos: duplicate property %q", p.Name)
		}
		cp := *p
		ps.byName[cp.Name] = len(ps.props)
		if cp.Concept != "" {
			ps.concept[cp.Concept] = len(ps.props)
		}
		ps.props = append(ps.props, &cp)
	}
	if len(ps.props) == 0 {
		return nil, fmt.Errorf("qos: empty property set")
	}
	return ps, nil
}

// MustNewPropertySet is NewPropertySet but panics on error.
func MustNewPropertySet(props ...*Property) *PropertySet {
	ps, err := NewPropertySet(props...)
	if err != nil {
		panic(err)
	}
	return ps
}

// StandardSet returns the five-property set used by most experiments:
// response time, price, availability, reliability, throughput.
func StandardSet() *PropertySet {
	return MustNewPropertySet(standardProperties()[:5]...)
}

// ExtendedSet returns the eight-property set used for the constraint-count
// sweeps.
func ExtendedSet() *PropertySet {
	return MustNewPropertySet(standardProperties()...)
}

// SubSet returns a new property set keeping only the first n properties.
func (ps *PropertySet) SubSet(n int) (*PropertySet, error) {
	if n <= 0 || n > len(ps.props) {
		return nil, fmt.Errorf("qos: SubSet(%d) out of range 1..%d", n, len(ps.props))
	}
	return NewPropertySet(ps.props[:n]...)
}

// Len returns the number of properties.
func (ps *PropertySet) Len() int { return len(ps.props) }

// At returns the i-th property.
func (ps *PropertySet) At(i int) *Property { return ps.props[i] }

// Index returns the position of the named property.
func (ps *PropertySet) Index(name string) (int, bool) {
	i, ok := ps.byName[name]
	return i, ok
}

// IndexByConcept returns the position of the property bound to the given
// semantic concept.
func (ps *PropertySet) IndexByConcept(c semantics.ConceptID) (int, bool) {
	i, ok := ps.concept[c]
	return i, ok
}

// Properties returns a copy of the property list.
func (ps *PropertySet) Properties() []*Property {
	out := make([]*Property, len(ps.props))
	copy(out, ps.props)
	return out
}

// Names returns the property names in order.
func (ps *PropertySet) Names() []string {
	out := make([]string, len(ps.props))
	for i, p := range ps.props {
		out[i] = p.Name
	}
	return out
}

// NewVector returns a zero vector aligned to the set.
func (ps *PropertySet) NewVector() Vector { return make(Vector, len(ps.props)) }

// identity returns the neutral element for sequence aggregation of the
// property: 0 for time/cost, 1 for probability, +Inf for bottleneck.
func identity(p *Property) float64 {
	switch p.Kind {
	case KindProbability:
		return 1
	case KindBottleneck:
		return math.Inf(1)
	default:
		return 0
	}
}
