package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone should be independent")
	}
	if Vector(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestVectorEqual(t *testing.T) {
	a := Vector{1, 2}
	if !a.Equal(Vector{1, 2 + 1e-12}, 1e-9) {
		t.Error("near-equal vectors should compare equal within eps")
	}
	if a.Equal(Vector{1, 3}, 1e-9) {
		t.Error("different vectors should not be equal")
	}
	if a.Equal(Vector{1}, 1e-9) {
		t.Error("different arity should not be equal")
	}
}

func TestVectorString(t *testing.T) {
	if got := (Vector{1, 2.5}).String(); got != "[1 2.5]" {
		t.Errorf("String() = %q", got)
	}
}

func TestNormalizerBasics(t *testing.T) {
	ps := MustNewPropertySet(
		&Property{Name: "rt", Direction: Minimized, Kind: KindTime},
		&Property{Name: "av", Direction: Maximized, Kind: KindProbability},
	)
	pop := []Vector{{100, 0.8}, {200, 0.9}, {300, 0.95}}
	nz, err := NewNormalizer(ps, pop)
	if err != nil {
		t.Fatalf("NewNormalizer: %v", err)
	}
	lo, hi := nz.Bounds(0)
	if lo != 100 || hi != 300 {
		t.Errorf("bounds = (%g, %g), want (100, 300)", lo, hi)
	}
	// Minimized: smallest value scores 1.
	if got := nz.Score(0, 100); got != 1 {
		t.Errorf("Score(rt=100) = %g, want 1", got)
	}
	if got := nz.Score(0, 300); got != 0 {
		t.Errorf("Score(rt=300) = %g, want 0", got)
	}
	// Maximized: largest value scores 1.
	if got := nz.Score(1, 0.95); got != 1 {
		t.Errorf("Score(av=0.95) = %g, want 1", got)
	}
	// Out-of-population values clamp.
	if got := nz.Score(0, 1e9); got != 0 {
		t.Errorf("Score(huge rt) = %g, want 0 (clamped)", got)
	}
	if got := nz.Score(0, -5); got != 1 {
		t.Errorf("Score(negative rt) = %g, want 1 (clamped)", got)
	}
	norm := nz.Normalize(Vector{200, 0.8})
	if !norm.Equal(Vector{0.5, 0}, 1e-9) {
		t.Errorf("Normalize = %v, want [0.5 0]", norm)
	}
}

func TestNormalizerDegenerate(t *testing.T) {
	ps := MustNewPropertySet(&Property{Name: "rt", Direction: Minimized, Kind: KindTime})
	nz, err := NewNormalizer(ps, []Vector{{50}, {50}})
	if err != nil {
		t.Fatalf("NewNormalizer: %v", err)
	}
	if got := nz.Score(0, 50); got != 1 {
		t.Errorf("degenerate population should score 1, got %g", got)
	}
}

func TestNormalizerErrors(t *testing.T) {
	ps := StandardSet()
	if _, err := NewNormalizer(nil, []Vector{{1}}); err == nil {
		t.Error("nil set should error")
	}
	if _, err := NewNormalizer(ps, nil); err == nil {
		t.Error("empty population should error")
	}
	if _, err := NewNormalizer(ps, []Vector{{1, 2}}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestWeights(t *testing.T) {
	ps := StandardSet()
	w := UniformWeights(ps)
	if len(w) != ps.Len() {
		t.Fatalf("uniform weights arity %d, want %d", len(w), ps.Len())
	}
	if err := w.Validate(ps); err != nil {
		t.Errorf("uniform weights should validate: %v", err)
	}
	if err := (Weights{1, 2}).Validate(ps); err == nil {
		t.Error("wrong arity should fail")
	}
	bad := UniformWeights(ps)
	bad[0] = -1
	if err := bad.Validate(ps); err == nil {
		t.Error("negative weight should fail")
	}
	zero := make(Weights, ps.Len())
	if err := zero.Validate(ps); err == nil {
		t.Error("all-zero weights should fail")
	}
}

func TestUtility(t *testing.T) {
	scores := Vector{1, 0, 0.5}
	w := Weights{2, 1, 1}
	want := (2*1 + 0 + 0.5) / 4
	if got := Utility(scores, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %g, want %g", got, want)
	}
	// Missing weights default to 1.
	if got := Utility(scores, Weights{2}); math.Abs(got-(2+0+0.5)/4) > 1e-12 {
		t.Errorf("Utility with short weights = %g", got)
	}
	if got := Utility(nil, nil); got != 0 {
		t.Errorf("Utility of empty vector = %g, want 0", got)
	}
}

func TestQuickNormalizeInUnitInterval(t *testing.T) {
	ps := MustNewPropertySet(
		&Property{Name: "a", Direction: Minimized, Kind: KindTime},
		&Property{Name: "b", Direction: Maximized, Kind: KindBottleneck},
	)
	f := func(raw [6]float64, probe [2]float64) bool {
		pop := []Vector{
			{math.Mod(raw[0], 1e6), math.Mod(raw[1], 1e6)},
			{math.Mod(raw[2], 1e6), math.Mod(raw[3], 1e6)},
			{math.Mod(raw[4], 1e6), math.Mod(raw[5], 1e6)},
		}
		nz, err := NewNormalizer(ps, pop)
		if err != nil {
			return false
		}
		got := nz.Normalize(Vector{math.Mod(probe[0], 1e6), math.Mod(probe[1], 1e6)})
		for _, s := range got {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUtilityMonotone(t *testing.T) {
	// Improving any single score never decreases utility.
	f := func(s1, s2, s3, delta float64) bool {
		clamp := func(x float64) float64 { return clampProb(x) }
		scores := Vector{clamp(s1), clamp(s2), clamp(s3)}
		w := Weights{1, 2, 3}
		base := Utility(scores, w)
		improved := scores.Clone()
		improved[1] = math.Min(1, improved[1]+math.Abs(math.Mod(delta, 1)))
		return Utility(improved, w) >= base-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstraints(t *testing.T) {
	ps := StandardSet()
	cs := Constraints{
		{Property: "responseTime", Bound: 500},
		{Property: "availability", Bound: 0.9},
	}
	if err := cs.Validate(ps); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ok := Vector{400, 10, 0.95, 0.9, 100}
	if !cs.Satisfied(ps, ok) {
		t.Error("vector within bounds should satisfy")
	}
	badRT := Vector{600, 10, 0.95, 0.9, 100}
	if cs.Satisfied(ps, badRT) {
		t.Error("response time above bound should violate")
	}
	if got := cs.Violated(ps, badRT); len(got) != 1 || got[0] != "responseTime" {
		t.Errorf("Violated = %v, want [responseTime]", got)
	}
	badAv := Vector{400, 10, 0.5, 0.9, 100}
	if got := cs.Violated(ps, badAv); len(got) != 1 || got[0] != "availability" {
		t.Errorf("Violated = %v, want [availability]", got)
	}
	// Violation grows with the miss distance.
	v1 := cs.Violation(ps, Vector{600, 0, 1, 1, 1})
	v2 := cs.Violation(ps, Vector{900, 0, 1, 1, 1})
	if !(v2 > v1 && v1 > 0) {
		t.Errorf("violation should grow with excess: %g then %g", v1, v2)
	}
}

func TestConstraintsValidateErrors(t *testing.T) {
	ps := StandardSet()
	if err := (Constraints{{Property: "nope", Bound: 1}}).Validate(ps); err == nil {
		t.Error("unknown property should fail validation")
	}
	dup := Constraints{{Property: "price", Bound: 1}, {Property: "price", Bound: 2}}
	if err := dup.Validate(ps); err == nil {
		t.Error("duplicate property should fail validation")
	}
	if err := (Constraints{{Property: "price", Bound: math.NaN()}}).Validate(ps); err == nil {
		t.Error("NaN bound should fail validation")
	}
}

func TestConstraintRendering(t *testing.T) {
	ps := StandardSet()
	c := Constraint{Property: "responseTime", Bound: 500}
	if got := c.Render(ps); got != "responseTime ≤ 500" {
		t.Errorf("Render = %q", got)
	}
	c = Constraint{Property: "availability", Bound: 0.9}
	if got := c.Render(ps); got != "availability ≥ 0.9" {
		t.Errorf("Render = %q", got)
	}
	cs := Constraints{c}
	if got := cs.String(); got == "" {
		t.Error("constraint set String should not be empty")
	}
}
