package qos

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func paretoPS() *PropertySet {
	return MustNewPropertySet(
		&Property{Name: "rt", Direction: Minimized, Kind: KindTime},
		&Property{Name: "av", Direction: Maximized, Kind: KindProbability},
	)
}

func TestDominates(t *testing.T) {
	ps := paretoPS()
	tests := []struct {
		name string
		a, b Vector
		want bool
	}{
		{"strictly better both", Vector{10, 0.9}, Vector{20, 0.8}, true},
		{"better one equal other", Vector{10, 0.9}, Vector{20, 0.9}, true},
		{"equal", Vector{10, 0.9}, Vector{10, 0.9}, false},
		{"tradeoff", Vector{10, 0.8}, Vector{20, 0.9}, false},
		{"worse", Vector{30, 0.7}, Vector{20, 0.9}, false},
		{"arity mismatch", Vector{10}, Vector{20, 0.9}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dominates(ps, tt.a, tt.b); got != tt.want {
				t.Errorf("Dominates(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestParetoFront(t *testing.T) {
	ps := paretoPS()
	vectors := []Vector{
		{10, 0.9},  // 0: non-dominated
		{20, 0.95}, // 1: non-dominated (tradeoff with 0)
		{30, 0.8},  // 2: dominated by 0 and 1
		{10, 0.9},  // 3: duplicate of 0 — dropped
		{5, 0.99},  // 4: dominates everything
	}
	front := ParetoFront(ps, vectors)
	// 4 dominates 0, 1, 2, 3 → only 4 remains.
	if len(front) != 1 || front[0] != 4 {
		t.Errorf("front = %v, want [4]", front)
	}
	// Without the dominator the front is {0, 1}.
	front = ParetoFront(ps, vectors[:4])
	if len(front) != 2 || front[0] != 0 || front[1] != 1 {
		t.Errorf("front = %v, want [0 1]", front)
	}
}

func TestQuickParetoFrontInvariants(t *testing.T) {
	ps := paretoPS()
	f := func(raw [8][2]float64) bool {
		vectors := make([]Vector, 0, len(raw))
		for _, r := range raw {
			vectors = append(vectors, Vector{clampProb(r[0]) * 100, clampProb(r[1])})
		}
		front := ParetoFront(ps, vectors)
		if len(front) == 0 {
			return false // at least one vector always survives
		}
		inFront := make(map[int]bool, len(front))
		for _, i := range front {
			inFront[i] = true
		}
		// No front member is dominated by any vector.
		for _, i := range front {
			for k, w := range vectors {
				if k != i && Dominates(ps, w, vectors[i]) {
					return false
				}
			}
		}
		// Every dropped vector is dominated by (or duplicates) a survivor.
		for i, v := range vectors {
			if inFront[i] {
				continue
			}
			covered := false
			for _, k := range front {
				if Dominates(ps, vectors[k], v) || vectors[k].Equal(v, 0) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func pareto3PS() *PropertySet {
	return MustNewPropertySet(
		&Property{Name: "rt", Direction: Minimized, Kind: KindTime},
		&Property{Name: "av", Direction: Maximized, Kind: KindProbability},
		&Property{Name: "pr", Direction: Minimized, Kind: KindCost},
	)
}

// TestQuickParetoSweepMatchesGeneral is the permutation-invariance
// property test for the 2-property sort-based sweep: under every random
// permutation of a random input, the sweep must return exactly the
// indices the O(n²) reference scan returns, and the selected vector set
// must be invariant across permutations.
func TestQuickParetoSweepMatchesGeneral(t *testing.T) {
	ps := paretoPS()
	f := func(raw [10][2]float64, perm [10]uint8) bool {
		base := make([]Vector, 0, len(raw))
		for _, r := range raw {
			// Quantize so duplicates actually occur.
			base = append(base, Vector{float64(int(clampProb(r[0]) * 8)), float64(int(clampProb(r[1]) * 8))})
		}
		refFront := func(vs []Vector) map[string]bool {
			set := make(map[string]bool)
			for _, i := range paretoFrontGeneral(ps, vs) {
				set[fmt.Sprintf("%v", vs[i])] = true
			}
			return set
		}
		want := refFront(base)
		// Fisher–Yates from the fuzzed bytes: a deterministic permutation
		// per quick case.
		vs := make([]Vector, len(base))
		copy(vs, base)
		for i := len(vs) - 1; i > 0; i-- {
			j := int(perm[i]) % (i + 1)
			vs[i], vs[j] = vs[j], vs[i]
		}
		sweep := paretoFront2(ps, vs)
		general := paretoFrontGeneral(ps, vs)
		if len(sweep) != len(general) {
			return false
		}
		for k := range sweep {
			if sweep[k] != general[k] {
				return false
			}
		}
		// The front as a vector set is permutation-invariant.
		got := make(map[string]bool)
		for _, i := range sweep {
			got[fmt.Sprintf("%v", vs[i])] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParetoFrontEpsilonDuplicates pins the duplicate rule: only EXACT
// float equality coalesces vectors. Near-duplicates differing by any
// nonzero epsilon are distinct points and both stay on the front,
// deterministically, in input order.
func TestParetoFrontEpsilonDuplicates(t *testing.T) {
	ps := paretoPS()
	const eps = 1e-12
	vectors := []Vector{
		{10, 0.9},
		{10, 0.9 + eps},  // better av: on the front, does NOT coalesce with 0
		{10 + eps, 0.9},  // worse rt, worse-or-equal av: dominated by 0
		{10, 0.9},        // exact duplicate of 0: dropped
		{10 - eps, 0.89}, // tradeoff with 0: on the front
	}
	want := []int{1, 4}
	// Vector 0 is dominated by 1 (equal rt, strictly better av).
	for _, impl := range []struct {
		name string
		fn   func(*PropertySet, []Vector) []int
	}{{"sweep", paretoFront2}, {"general", paretoFrontGeneral}, {"dispatch", ParetoFront}} {
		got := impl.fn(ps, vectors)
		if len(got) != len(want) {
			t.Fatalf("%s: front = %v, want %v", impl.name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: front = %v, want %v", impl.name, got, want)
			}
		}
	}
	// Exact duplicates keep the first occurrence only — and which index
	// survives is stable across both implementations.
	dups := []Vector{{10, 0.9}, {20, 0.95}, {10, 0.9}}
	for _, impl := range []func(*PropertySet, []Vector) []int{paretoFront2, paretoFrontGeneral} {
		got := impl(ps, dups)
		if len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("duplicate front = %v, want [0 1]", got)
		}
	}
}

func TestParetoFrontGeneralFallback(t *testing.T) {
	ps := pareto3PS()
	vectors := []Vector{
		{10, 0.9, 5},  // front
		{20, 0.95, 4}, // front
		{30, 0.8, 6},  // dominated by 0
		{10, 0.9, 5},  // duplicate of 0
	}
	front := ParetoFront(ps, vectors)
	if len(front) != 2 || front[0] != 0 || front[1] != 1 {
		t.Errorf("front = %v, want [0 1]", front)
	}
}

func TestArchiveInsert(t *testing.T) {
	props := paretoPS().Properties()
	a := NewArchive(props)
	if ins, _ := a.Insert(Vector{20, 0.8}, 1); !ins {
		t.Fatal("first insert rejected")
	}
	if ins, _ := a.Insert(Vector{10, 0.9}, 2); !ins {
		t.Fatal("dominating insert rejected")
	}
	// {20, 0.8} was dominated and must be gone.
	if a.Len() != 1 || a.Points()[0].ID != 2 {
		t.Fatalf("archive = %+v, want single ID 2", a.Points())
	}
	if ins, _ := a.Insert(Vector{15, 0.85}, 3); ins {
		t.Fatal("dominated insert accepted")
	}
	if ins, _ := a.Insert(Vector{10, 0.9}, 4); ins {
		t.Fatal("exact duplicate insert accepted")
	}
	if !a.Dominated(Vector{10, 0.9}) || !a.Dominated(Vector{12, 0.9}) {
		t.Fatal("Dominated() missed covered vectors")
	}
	if a.Dominated(Vector{5, 0.5}) {
		t.Fatal("Dominated() rejected a tradeoff vector")
	}
	if ins, _ := a.Insert(Vector{5, 0.5}, 5); !ins {
		t.Fatal("tradeoff insert rejected")
	}
	// A vector dominating both members evicts both, reporting their IDs.
	ins, removed := a.Insert(Vector{1, 0.99}, 6)
	if !ins || len(removed) != 2 || removed[0] != 2 || removed[1] != 5 {
		t.Fatalf("Insert = (%v, %v), want (true, [2 5])", ins, removed)
	}
	if a.Len() != 1 {
		t.Fatalf("archive length = %d, want 1", a.Len())
	}
}

func TestCrowdingDistance(t *testing.T) {
	props := paretoPS().Properties()
	vectors := []Vector{{10, 0.9}, {20, 0.95}, {15, 0.93}}
	d := CrowdingDistance(props, vectors)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[1], 1) {
		t.Fatalf("boundary points not infinite: %v", d)
	}
	if math.IsInf(d[2], 1) || d[2] <= 0 {
		t.Fatalf("interior point distance = %v, want finite positive", d[2])
	}
	// A single point is a boundary on every objective.
	d = CrowdingDistance(props, []Vector{{1, 1}})
	if !math.IsInf(d[0], 1) {
		t.Fatalf("single point distance = %v, want +Inf", d[0])
	}
}

func TestHypervolume2D(t *testing.T) {
	props := paretoPS().Properties() // rt minimized, av maximized
	ref := Vector{100, 0}
	// Single point: gains (100-10, 0.9-0) → area 90 × 0.9 = 81.
	hv, err := Hypervolume(props, []Vector{{10, 0.9}}, ref)
	if err != nil || math.Abs(hv-81) > 1e-9 {
		t.Fatalf("hv = %v, %v; want 81", hv, err)
	}
	// Two tradeoff points: boxes 90×0.9 and 80×0.95 → union
	// 80×0.95 + (90-80)×0.9 = 76 + 9 = 85.
	hv, err = Hypervolume(props, []Vector{{10, 0.9}, {20, 0.95}}, ref)
	if err != nil || math.Abs(hv-85) > 1e-9 {
		t.Fatalf("hv = %v, %v; want 85", hv, err)
	}
	// Order must not matter.
	hv2v, _ := Hypervolume(props, []Vector{{20, 0.95}, {10, 0.9}}, ref)
	if math.Abs(hv-hv2v) > 1e-12 {
		t.Fatalf("hypervolume not permutation-invariant: %v vs %v", hv, hv2v)
	}
	// A point outside the reference box contributes nothing.
	hv, err = Hypervolume(props, []Vector{{200, 0.5}}, ref)
	if err != nil || hv != 0 {
		t.Fatalf("out-of-box hv = %v, %v; want 0", hv, err)
	}
}

func TestHypervolume3D(t *testing.T) {
	props := pareto3PS().Properties() // rt min, av max, pr min
	ref := Vector{100, 0, 10}
	// Single point: (100-10) × 0.9 × (10-5) = 405.
	hv, err := Hypervolume(props, []Vector{{10, 0.9, 5}}, ref)
	if err != nil || math.Abs(hv-405) > 1e-9 {
		t.Fatalf("hv = %v, %v; want 405", hv, err)
	}
	// Two disjoint-ish points; verify against inclusion-exclusion:
	// A = (90, 0.9, 5), B = (80, 0.95, 6) as gains.
	// vol(A)=405, vol(B)=456, vol(A∩B)=80×0.9×5=360 → union 501.
	hv, err = Hypervolume(props, []Vector{{10, 0.9, 5}, {20, 0.95, 4}}, ref)
	if err != nil || math.Abs(hv-501) > 1e-9 {
		t.Fatalf("hv = %v, %v; want 501", hv, err)
	}
}

func TestHypervolumeErrors(t *testing.T) {
	props := paretoPS().Properties()
	if _, err := Hypervolume(props[:1], nil, Vector{1}); err == nil {
		t.Fatal("1-objective hypervolume must error")
	}
	if _, err := Hypervolume(props, []Vector{{1, 2}}, Vector{1}); err == nil {
		t.Fatal("short reference must error")
	}
	if _, err := Hypervolume(props, []Vector{{1}}, Vector{1, 2}); err == nil {
		t.Fatal("short vector must error")
	}
}
