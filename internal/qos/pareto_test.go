package qos

import (
	"testing"
	"testing/quick"
)

func paretoPS() *PropertySet {
	return MustNewPropertySet(
		&Property{Name: "rt", Direction: Minimized, Kind: KindTime},
		&Property{Name: "av", Direction: Maximized, Kind: KindProbability},
	)
}

func TestDominates(t *testing.T) {
	ps := paretoPS()
	tests := []struct {
		name string
		a, b Vector
		want bool
	}{
		{"strictly better both", Vector{10, 0.9}, Vector{20, 0.8}, true},
		{"better one equal other", Vector{10, 0.9}, Vector{20, 0.9}, true},
		{"equal", Vector{10, 0.9}, Vector{10, 0.9}, false},
		{"tradeoff", Vector{10, 0.8}, Vector{20, 0.9}, false},
		{"worse", Vector{30, 0.7}, Vector{20, 0.9}, false},
		{"arity mismatch", Vector{10}, Vector{20, 0.9}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dominates(ps, tt.a, tt.b); got != tt.want {
				t.Errorf("Dominates(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestParetoFront(t *testing.T) {
	ps := paretoPS()
	vectors := []Vector{
		{10, 0.9},  // 0: non-dominated
		{20, 0.95}, // 1: non-dominated (tradeoff with 0)
		{30, 0.8},  // 2: dominated by 0 and 1
		{10, 0.9},  // 3: duplicate of 0 — dropped
		{5, 0.99},  // 4: dominates everything
	}
	front := ParetoFront(ps, vectors)
	// 4 dominates 0, 1, 2, 3 → only 4 remains.
	if len(front) != 1 || front[0] != 4 {
		t.Errorf("front = %v, want [4]", front)
	}
	// Without the dominator the front is {0, 1}.
	front = ParetoFront(ps, vectors[:4])
	if len(front) != 2 || front[0] != 0 || front[1] != 1 {
		t.Errorf("front = %v, want [0 1]", front)
	}
}

func TestQuickParetoFrontInvariants(t *testing.T) {
	ps := paretoPS()
	f := func(raw [8][2]float64) bool {
		vectors := make([]Vector, 0, len(raw))
		for _, r := range raw {
			vectors = append(vectors, Vector{clampProb(r[0]) * 100, clampProb(r[1])})
		}
		front := ParetoFront(ps, vectors)
		if len(front) == 0 {
			return false // at least one vector always survives
		}
		inFront := make(map[int]bool, len(front))
		for _, i := range front {
			inFront[i] = true
		}
		// No front member is dominated by any vector.
		for _, i := range front {
			for k, w := range vectors {
				if k != i && Dominates(ps, w, vectors[i]) {
					return false
				}
			}
		}
		// Every dropped vector is dominated by (or duplicates) a survivor.
		for i, v := range vectors {
			if inFront[i] {
				continue
			}
			covered := false
			for _, k := range front {
				if Dominates(ps, vectors[k], v) || vectors[k].Equal(v, 0) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
