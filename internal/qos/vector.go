package qos

import (
	"fmt"
	"math"
	"strings"
)

// Vector holds one value per property of an implied PropertySet, in the
// set's order. The zero-length vector is valid only for the empty set.
type Vector []float64

// Clone returns an independent copy of the vector.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports element-wise equality within eps.
func (v Vector) Equal(other Vector, eps float64) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-other[i]) > eps {
			return false
		}
	}
	return true
}

// String formats the vector compactly for logs and error messages.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", x)
	}
	b.WriteByte(']')
	return b.String()
}

// Normalizer rescales raw QoS vectors into direction-adjusted [0,1] scores
// where 1 is always best, using the min–max bounds observed over a
// candidate population (the standard normalization of the thesis's utility
// function).
type Normalizer struct {
	ps  *PropertySet
	min []float64
	max []float64
}

// NewNormalizer computes per-property min–max bounds from the given
// population of vectors. At least one vector is required and every vector
// must match the set's arity.
func NewNormalizer(ps *PropertySet, population []Vector) (*Normalizer, error) {
	if ps == nil {
		return nil, fmt.Errorf("qos: nil property set")
	}
	if len(population) == 0 {
		return nil, fmt.Errorf("qos: empty population")
	}
	n := ps.Len()
	nz := &Normalizer{ps: ps, min: make([]float64, n), max: make([]float64, n)}
	for j := 0; j < n; j++ {
		nz.min[j] = math.Inf(1)
		nz.max[j] = math.Inf(-1)
	}
	for _, v := range population {
		if len(v) != n {
			return nil, fmt.Errorf("qos: vector arity %d does not match property set arity %d", len(v), n)
		}
		for j, x := range v {
			if x < nz.min[j] {
				nz.min[j] = x
			}
			if x > nz.max[j] {
				nz.max[j] = x
			}
		}
	}
	return nz, nil
}

// Bounds returns the observed (min, max) for property j.
func (nz *Normalizer) Bounds(j int) (float64, float64) { return nz.min[j], nz.max[j] }

// Score normalizes a single raw value of property j into [0,1], 1 = best.
// When all observed values coincide the score is 1 (any candidate is as
// good as the best).
func (nz *Normalizer) Score(j int, x float64) float64 {
	lo, hi := nz.min[j], nz.max[j]
	if hi <= lo {
		return 1
	}
	// Clamp out-of-population values rather than extrapolating.
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	s := (x - lo) / (hi - lo)
	if nz.ps.At(j).Direction == Minimized {
		s = 1 - s
	}
	return s
}

// Normalize maps a raw vector into direction-adjusted [0,1] scores.
func (nz *Normalizer) Normalize(v Vector) Vector {
	return nz.NormalizeInto(make(Vector, len(v)), v)
}

// NormalizeInto is Normalize writing into a caller-provided destination
// (len(dst) must equal len(v)) and returning it: the allocation-free
// variant the pooled selection hot path uses. The scores are computed by
// the same per-element Score calls as Normalize, so the results are
// bit-identical.
func (nz *Normalizer) NormalizeInto(dst Vector, v Vector) Vector {
	for j, x := range v {
		dst[j] = nz.Score(j, x)
	}
	return dst
}

// Weights express user preferences over properties (W in the thesis).
// They are aligned to a PropertySet and need not sum to one; Utility
// normalizes by the total weight.
type Weights []float64

// UniformWeights returns equal preference for every property of the set.
func UniformWeights(ps *PropertySet) Weights {
	w := make(Weights, ps.Len())
	for i := range w {
		w[i] = 1
	}
	return w
}

// Validate checks arity and non-negativity, requiring at least one
// positive weight.
func (w Weights) Validate(ps *PropertySet) error {
	if len(w) != ps.Len() {
		return fmt.Errorf("qos: %d weights for %d properties", len(w), ps.Len())
	}
	total := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) {
			return fmt.Errorf("qos: negative or NaN weight %g for %q", x, ps.At(i).Name)
		}
		total += x
	}
	if total == 0 {
		return fmt.Errorf("qos: all weights are zero")
	}
	return nil
}

// Utility computes the weighted utility of a normalized score vector:
// F = Σ w_j·score_j / Σ w_j, in [0,1].
func Utility(scores Vector, w Weights) float64 {
	total, acc := 0.0, 0.0
	for j, s := range scores {
		wj := 1.0
		if j < len(w) {
			wj = w[j]
		}
		total += wj
		acc += wj * s
	}
	if total == 0 {
		return 0
	}
	return acc / total
}
