package qos

import (
	"fmt"
	"math"
)

// Approach selects how non-deterministic patterns (choice branches, loop
// iteration counts) are folded into a single aggregated value. The thesis
// compares all three in Figs. VI.7 and VI.8.
type Approach int

// Aggregation approaches.
const (
	// Pessimistic assumes the worst branch is taken and loops run their
	// maximum iterations: the aggregate is a guaranteed bound.
	Pessimistic Approach = iota + 1
	// Optimistic assumes the best branch and minimum iterations: the
	// aggregate is the best case the composition can deliver.
	Optimistic
	// MeanValue weighs branches by their probabilities and loops by their
	// expected iteration count: the aggregate is the expected QoS.
	MeanValue
)

// Approaches lists all aggregation approaches in presentation order.
func Approaches() []Approach { return []Approach{Pessimistic, Optimistic, MeanValue} }

// String returns the conventional name of the approach.
func (a Approach) String() string {
	switch a {
	case Pessimistic:
		return "pessimistic"
	case Optimistic:
		return "optimistic"
	case MeanValue:
		return "mean-value"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Loop bounds the iterations of a loop pattern.
type Loop struct {
	// Min and Max bound the iteration count (Min ≥ 0, Max ≥ Min).
	Min, Max int
	// Expected is the mean iteration count used by the mean-value
	// approach; when zero it defaults to (Min+Max)/2.
	Expected float64
}

// Iterations returns the iteration count the given approach assumes.
func (l Loop) Iterations(a Approach) float64 {
	switch a {
	case Optimistic:
		return float64(l.Min)
	case MeanValue:
		if l.Expected > 0 {
			return l.Expected
		}
		return float64(l.Min+l.Max) / 2
	default: // Pessimistic
		return float64(l.Max)
	}
}

// SequenceIdentity is the neutral element of the sequence fold for the
// property: 0 for time/cost sums, 1 for probability products, +Inf for
// bottleneck minima. AggregateSequence is exactly the left fold of
// SequenceStep from this element, which lets incremental evaluators
// (internal/core's evaluation plan) re-fold partial child lists and
// still produce bit-identical aggregates.
func SequenceIdentity(p *Property) float64 { return identity(p) }

// SequenceStep folds one more value into a running sequence aggregate.
func SequenceStep(p *Property, acc, x float64) float64 {
	switch p.Kind {
	case KindProbability:
		return acc * x
	case KindBottleneck:
		return math.Min(acc, x)
	default: // KindTime, KindCost
		return acc + x
	}
}

// ParallelIdentity is the neutral element of the parallel fold for the
// property: 0 for time maxima and cost sums, 1 for probability
// products, +Inf for bottleneck minima. AggregateParallel is exactly
// the left fold of ParallelStep from this element.
func ParallelIdentity(p *Property) float64 {
	switch p.Kind {
	case KindTime, KindCost:
		return 0
	case KindProbability:
		return 1
	default: // KindBottleneck
		return math.Inf(1)
	}
}

// ParallelStep folds one more value into a running parallel aggregate.
func ParallelStep(p *Property, acc, x float64) float64 {
	switch p.Kind {
	case KindTime:
		return math.Max(acc, x)
	case KindCost:
		return acc + x
	case KindProbability:
		return acc * x
	default: // KindBottleneck
		return math.Min(acc, x)
	}
}

// AggregateSequence folds the QoS values of activities executed in
// sequence (Table IV.1): sum for time and cost, product for
// probabilities, min for bottleneck capacities.
func AggregateSequence(p *Property, vals []float64) float64 {
	acc := SequenceIdentity(p)
	for _, x := range vals {
		acc = SequenceStep(p, acc, x)
	}
	return acc
}

// AggregateParallel folds the QoS values of activities executed in
// parallel (Table IV.1): max for time (the slowest branch gates the
// flow), sum for cost, product for probabilities, min for capacities.
func AggregateParallel(p *Property, vals []float64) float64 {
	acc := ParallelIdentity(p)
	for _, x := range vals {
		acc = ParallelStep(p, acc, x)
	}
	return acc
}

// AggregateChoice folds the QoS values of mutually exclusive branches.
// The pessimistic approach keeps the worst branch, the optimistic one the
// best branch, and the mean-value approach the probability-weighted mean
// (uniform when probs is nil or inconsistent).
func AggregateChoice(p *Property, vals, probs []float64, a Approach) float64 {
	if len(vals) == 0 {
		return identity(p)
	}
	switch a {
	case Optimistic:
		best := vals[0]
		for _, x := range vals[1:] {
			if p.Better(x, best) {
				best = x
			}
		}
		return best
	case MeanValue:
		if len(probs) != len(vals) {
			probs = nil
		}
		total, acc := 0.0, 0.0
		for i, x := range vals {
			w := 1.0
			if probs != nil {
				w = probs[i]
			}
			total += w
			acc += w * x
		}
		if total == 0 {
			return vals[0]
		}
		return acc / total
	default: // Pessimistic
		worst := vals[0]
		for _, x := range vals[1:] {
			if p.Worse(x, worst) {
				worst = x
			}
		}
		return worst
	}
}

// AggregateLoop folds the QoS value of a loop body repeated per the loop
// bounds (Table IV.1): k·x for time and cost, x^k for probabilities,
// unchanged for capacities.
func AggregateLoop(p *Property, val float64, loop Loop, a Approach) float64 {
	k := loop.Iterations(a)
	if k < 0 {
		k = 0
	}
	switch p.Kind {
	case KindProbability:
		return math.Pow(val, k)
	case KindBottleneck:
		return val
	default: // KindTime, KindCost
		return k * val
	}
}

// AggregateSequenceVec applies AggregateSequence property-wise to aligned
// vectors.
func AggregateSequenceVec(ps *PropertySet, vecs []Vector) Vector {
	return foldVec(ps, vecs, AggregateSequence)
}

// AggregateParallelVec applies AggregateParallel property-wise to aligned
// vectors.
func AggregateParallelVec(ps *PropertySet, vecs []Vector) Vector {
	return foldVec(ps, vecs, AggregateParallel)
}

// AggregateChoiceVec applies AggregateChoice property-wise to aligned
// vectors.
func AggregateChoiceVec(ps *PropertySet, vecs []Vector, probs []float64, a Approach) Vector {
	out := ps.NewVector()
	vals := make([]float64, len(vecs))
	for j := 0; j < ps.Len(); j++ {
		for i, v := range vecs {
			vals[i] = v[j]
		}
		out[j] = AggregateChoice(ps.At(j), vals, probs, a)
	}
	return out
}

// AggregateLoopVec applies AggregateLoop property-wise to a vector.
func AggregateLoopVec(ps *PropertySet, v Vector, loop Loop, a Approach) Vector {
	out := ps.NewVector()
	for j := 0; j < ps.Len(); j++ {
		out[j] = AggregateLoop(ps.At(j), v[j], loop, a)
	}
	return out
}

func foldVec(ps *PropertySet, vecs []Vector, agg func(*Property, []float64) float64) Vector {
	out := ps.NewVector()
	vals := make([]float64, len(vecs))
	for j := 0; j < ps.Len(); j++ {
		for i, v := range vecs {
			vals[i] = v[j]
		}
		out[j] = agg(ps.At(j), vals)
	}
	return out
}
