package qos

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether vector a Pareto-dominates vector b under the
// property set's directions: a is at least as good on every property and
// strictly better on at least one.
func Dominates(ps *PropertySet, a, b Vector) bool {
	if len(a) != ps.Len() || len(b) != ps.Len() {
		return false
	}
	strict := false
	for j := 0; j < ps.Len(); j++ {
		p := ps.At(j)
		switch {
		case p.Better(b[j], a[j]):
			return false
		case p.Better(a[j], b[j]):
			strict = true
		}
	}
	return strict
}

// DominatesOver is Dominates over an explicit property slice, so callers
// working on an objective subset of a set (Pareto-front selection projects
// aggregated vectors onto 2–3 chosen objectives) can reuse the same
// dominance relation without building a PropertySet.
func DominatesOver(props []*Property, a, b Vector) bool {
	if len(a) != len(props) || len(b) != len(props) {
		return false
	}
	strict := false
	for j, p := range props {
		switch {
		case p.Better(b[j], a[j]):
			return false
		case p.Better(a[j], b[j]):
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the non-dominated vectors, in input
// order.
//
// Duplicate handling is EXACT float equality (Vector.Equal with eps 0):
// among bit-identical vectors only the first occurrence is kept, while
// vectors that differ by any nonzero amount — however small — are distinct
// points and may both sit on the front. Near-duplicates are therefore kept
// deterministically (both survive, in input order); callers that want
// epsilon-coalescing must quantize before calling.
//
// The 2-property case runs as an O(n log n) sort-based sweep; other
// arities use the O(n²) pairwise scan — fine at candidate-set scale.
func ParetoFront(ps *PropertySet, vectors []Vector) []int {
	if ps.Len() == 2 {
		return paretoFront2(ps, vectors)
	}
	return paretoFrontGeneral(ps, vectors)
}

// paretoFrontGeneral is the O(n²) pairwise scan, the reference semantics
// for any arity.
func paretoFrontGeneral(ps *PropertySet, vectors []Vector) []int {
	out := make([]int, 0, len(vectors))
	for i, v := range vectors {
		dominated := false
		for k, w := range vectors {
			if k == i {
				continue
			}
			if Dominates(ps, w, v) {
				dominated = true
				break
			}
			// Among exact duplicates keep only the first occurrence.
			if k < i && w.Equal(v, 0) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// paretoFront2 is the sort-based sweep for the 2-property case: sort
// best-first on property 0 (ties broken best-first on property 1, then
// input order via the stable sort), then keep exactly the points whose
// property-1 value strictly improves on the best seen so far. A point
// that fails that test is dominated by, or an exact duplicate of, an
// earlier kept point. Output is remapped to input order so the result is
// element-identical to the general scan.
func paretoFront2(ps *PropertySet, vectors []Vector) []int {
	p0, p1 := ps.At(0), ps.At(1)
	out := make([]int, 0, len(vectors))
	order := make([]int, 0, len(vectors))
	for i, v := range vectors {
		if len(v) != 2 {
			// Arity-mismatched vectors neither dominate nor are dominated
			// (see Dominates); the general scan keeps them, so must we.
			out = append(out, i)
			continue
		}
		if math.IsNaN(v[0]) || math.IsNaN(v[1]) {
			// NaN breaks the strict weak ordering the sweep relies on;
			// defer to the reference scan for bit-identical behaviour.
			return paretoFrontGeneral(ps, vectors)
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := vectors[order[x]], vectors[order[y]]
		if a[0] != b[0] {
			return p0.Better(a[0], b[0])
		}
		if a[1] != b[1] {
			return p1.Better(a[1], b[1])
		}
		return false // exact duplicates: stable sort preserves input order
	})
	have := false
	best1 := 0.0
	for _, i := range order {
		v := vectors[i]
		if !have || p1.Better(v[1], best1) {
			have, best1 = true, v[1]
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// FrontPoint is one member of an Archive: an objective vector plus the
// caller's identifier for whatever the vector evaluates (an assignment
// snapshot, a candidate index, ...).
type FrontPoint struct {
	Vector Vector
	ID     int
}

// Archive is an incrementally maintained non-dominated set: the archive
// the Pareto-front selection mode searches against instead of a single
// scalar incumbent. Insert is O(|archive|) per offered vector; membership
// order is insertion order, which keeps the archive deterministic for a
// deterministic offer sequence.
type Archive struct {
	props []*Property
	pts   []FrontPoint
}

// NewArchive returns an empty archive over the given objective
// properties.
func NewArchive(props []*Property) *Archive {
	return &Archive{props: props}
}

// Len returns the number of non-dominated members.
func (a *Archive) Len() int { return len(a.pts) }

// Points returns the archive members in insertion order. The slice is the
// archive's own backing store; callers must not mutate it.
func (a *Archive) Points() []FrontPoint { return a.pts }

// Dominated reports whether v would be rejected by Insert: some member
// dominates it or equals it exactly.
func (a *Archive) Dominated(v Vector) bool {
	for _, pt := range a.pts {
		if DominatesOver(a.props, pt.Vector, v) || pt.Vector.Equal(v, 0) {
			return true
		}
	}
	return false
}

// Insert offers (v, id) to the archive. If some member dominates v or is
// an exact duplicate of it, the archive is unchanged and inserted is
// false. Otherwise v joins the archive, every member it dominates is
// evicted, and the evicted IDs are returned (in membership order). The
// vector is stored as given — the caller must not mutate it afterwards.
func (a *Archive) Insert(v Vector, id int) (inserted bool, removed []int) {
	if a.Dominated(v) {
		return false, nil
	}
	kept := a.pts[:0]
	for _, pt := range a.pts {
		if DominatesOver(a.props, v, pt.Vector) {
			removed = append(removed, pt.ID)
			continue
		}
		kept = append(kept, pt)
	}
	a.pts = append(kept, FrontPoint{Vector: v, ID: id})
	return true, removed
}

// CrowdingDistance returns the NSGA-II crowding distance of each vector
// within the (assumed mutually non-dominated) set: boundary points on any
// objective get +Inf, interior points the sum over objectives of the
// normalized gap between their neighbours. Larger is less crowded;
// ordering a front by descending crowding distance puts the extremes and
// the best-spread points first.
func CrowdingDistance(props []*Property, vectors []Vector) []float64 {
	n := len(vectors)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	idx := make([]int, n)
	for j := range props {
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool {
			return vectors[idx[x]][j] < vectors[idx[y]][j]
		})
		lo, hi := vectors[idx[0]][j], vectors[idx[n-1]][j]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < n-1; k++ {
			dist[idx[k]] += (vectors[idx[k+1]][j] - vectors[idx[k-1]][j]) / (hi - lo)
		}
	}
	return dist
}

// Hypervolume returns the hypervolume dominated by the given (mutually
// non-dominated) vectors relative to the reference point ref, which must
// be at least as bad as every vector on every objective; coordinates
// outside the reference box are clamped to it. Supports 2 and 3
// objectives — the front sizes the selection stack produces.
func Hypervolume(props []*Property, vectors []Vector, ref Vector) (float64, error) {
	m := len(props)
	if m != 2 && m != 3 {
		return 0, fmt.Errorf("qos: hypervolume supports 2 or 3 objectives, got %d", m)
	}
	if len(ref) != m {
		return 0, fmt.Errorf("qos: hypervolume reference has arity %d, want %d", len(ref), m)
	}
	// Transform every objective into a gain over the reference point so
	// the dominated region is the union of axis-aligned boxes anchored at
	// the origin.
	gains := make([]Vector, 0, len(vectors))
	for _, v := range vectors {
		if len(v) != m {
			return 0, fmt.Errorf("qos: hypervolume vector has arity %d, want %d", len(v), m)
		}
		g := make(Vector, m)
		for j, p := range props {
			d := v[j] - ref[j]
			if p.Direction == Minimized {
				d = ref[j] - v[j]
			}
			if d < 0 {
				d = 0
			}
			g[j] = d
		}
		gains = append(gains, g)
	}
	if m == 2 {
		return hv2(gains), nil
	}
	// 3 objectives: slice along the third gain axis ("hypervolume by
	// slicing objectives"). Sorted by descending gain on axis 2, the
	// volume is the sum over slices [g2(k+1), g2(k)] of the slab depth
	// times the 2D hypervolume of the first k+1 points' projections.
	sort.SliceStable(gains, func(x, y int) bool { return gains[x][2] > gains[y][2] })
	var vol float64
	proj := make([]Vector, 0, len(gains))
	for k, g := range gains {
		proj = append(proj, Vector{g[0], g[1]})
		next := 0.0
		if k+1 < len(gains) {
			next = gains[k+1][2]
		}
		if depth := g[2] - next; depth > 0 {
			vol += depth * hv2(proj)
		}
	}
	return vol, nil
}

// hv2 returns the area of the union of origin-anchored boxes [0,g0]×[0,g1].
// Tolerates dominated/duplicate points (it computes the union regardless).
func hv2(gains []Vector) float64 {
	if len(gains) == 0 {
		return 0
	}
	idx := make([]int, len(gains))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return gains[idx[x]][0] > gains[idx[y]][0] })
	var area, prev1 float64
	for k, i := range idx {
		g := gains[i]
		next0 := 0.0
		if k+1 < len(idx) {
			next0 = gains[idx[k+1]][0]
		}
		if g[1] > prev1 {
			prev1 = g[1]
		}
		if w := g[0] - next0; w > 0 {
			area += w * prev1
		}
	}
	return area
}
