package qos

// Dominates reports whether vector a Pareto-dominates vector b under the
// property set's directions: a is at least as good on every property and
// strictly better on at least one.
func Dominates(ps *PropertySet, a, b Vector) bool {
	if len(a) != ps.Len() || len(b) != ps.Len() {
		return false
	}
	strict := false
	for j := 0; j < ps.Len(); j++ {
		p := ps.At(j)
		switch {
		case p.Better(b[j], a[j]):
			return false
		case p.Better(a[j], b[j]):
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the non-dominated vectors, in input
// order. It is O(n²) — fine at candidate-set scale.
func ParetoFront(ps *PropertySet, vectors []Vector) []int {
	out := make([]int, 0, len(vectors))
	for i, v := range vectors {
		dominated := false
		for k, w := range vectors {
			if k == i {
				continue
			}
			if Dominates(ps, w, v) {
				dominated = true
				break
			}
			// Among duplicates keep only the first occurrence.
			if k < i && w.Equal(v, 0) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
