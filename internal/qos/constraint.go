package qos

import (
	"fmt"
	"math"
	"strings"
)

// Constraint is one global QoS requirement u_i of the user request: a
// bound on the aggregated value of one property over the whole
// composition. For minimized properties the aggregate must not exceed the
// bound; for maximized properties it must not fall below it.
type Constraint struct {
	// Property names the constrained property in the request's set.
	Property string
	// Bound is the threshold, expressed in the property's canonical unit.
	Bound float64
}

// String renders the constraint with its comparison operator.
func (c Constraint) String() string {
	return fmt.Sprintf("%s?%g", c.Property, c.Bound)
}

// Render formats the constraint against a property set, choosing the
// operator from the property direction.
func (c Constraint) Render(ps *PropertySet) string {
	op := "≤"
	if j, ok := ps.Index(c.Property); ok && ps.At(j).Direction == Maximized {
		op = "≥"
	}
	return fmt.Sprintf("%s %s %g", c.Property, op, c.Bound)
}

// Constraints is the global requirement set U.
type Constraints []Constraint

// Validate checks that every constraint names a property of the set and
// that no property is constrained twice.
func (cs Constraints) Validate(ps *PropertySet) error {
	seen := make(map[string]struct{}, len(cs))
	for _, c := range cs {
		if _, ok := ps.Index(c.Property); !ok {
			return fmt.Errorf("qos: constraint on unknown property %q", c.Property)
		}
		if _, dup := seen[c.Property]; dup {
			return fmt.Errorf("qos: duplicate constraint on %q", c.Property)
		}
		if math.IsNaN(c.Bound) {
			return fmt.Errorf("qos: NaN bound on %q", c.Property)
		}
		seen[c.Property] = struct{}{}
	}
	return nil
}

// Satisfied reports whether the aggregated vector meets every constraint.
func (cs Constraints) Satisfied(ps *PropertySet, agg Vector) bool {
	return cs.Violation(ps, agg) == 0
}

// Violation measures by how much the aggregated vector misses the
// constraint set: the sum over violated constraints of the relative
// excess |agg−bound| / max(|bound|, 1). Zero means all constraints hold.
func (cs Constraints) Violation(ps *PropertySet, agg Vector) float64 {
	total := 0.0
	for _, c := range cs {
		j, ok := ps.Index(c.Property)
		if !ok || j >= len(agg) {
			continue
		}
		v := agg[j]
		var excess float64
		if ps.At(j).Direction == Minimized {
			excess = v - c.Bound
		} else {
			excess = c.Bound - v
		}
		if excess > 0 {
			total += excess / math.Max(math.Abs(c.Bound), 1)
		}
	}
	return total
}

// Violated returns the names of the properties whose constraints the
// aggregated vector breaks, in constraint order.
func (cs Constraints) Violated(ps *PropertySet, agg Vector) []string {
	var out []string
	for _, c := range cs {
		j, ok := ps.Index(c.Property)
		if !ok || j >= len(agg) {
			continue
		}
		v := agg[j]
		broken := false
		if ps.At(j).Direction == Minimized {
			broken = v > c.Bound
		} else {
			broken = v < c.Bound
		}
		if broken {
			out = append(out, c.Property)
		}
	}
	return out
}

// String renders the constraint set.
func (cs Constraints) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
