package qasom_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"qasom"
	"qasom/internal/obs"
)

// paretoShopTask is a two-step task whose buy step has a clean
// response-time/price trade-off across the published bookshops.
const paretoShopTask = `<process name="pareto-shop" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <invoke activity="buy" concept="BookSale"/>
  </sequence>
</process>`

// publishParetoShop deploys one catalog and four mutually non-dominated
// bookshops (faster is pricier), so the exact Pareto front over
// {responseTime, price} has four members.
func publishParetoShop(t *testing.T, mw *qasom.Middleware) {
	t.Helper()
	qosOf := func(rt, price float64) map[string]float64 {
		return map[string]float64{
			"responseTime": rt, "price": price, "availability": 0.95,
			"reliability": 0.92, "throughput": 50,
		}
	}
	services := []qasom.Service{
		{ID: "catalog-0", Capability: "BrowseCatalog", Device: "devA", QoS: qosOf(40, 0)},
		{ID: "bookshop-0", Capability: "BookSale", Device: "devA", QoS: qosOf(40, 10)},
		{ID: "bookshop-1", Capability: "BookSale", Device: "devB", QoS: qosOf(60, 6)},
		{ID: "bookshop-2", Capability: "BookSale", Device: "devC", QoS: qosOf(80, 3)},
		{ID: "bookshop-3", Capability: "BookSale", Device: "devD", QoS: qosOf(100, 1)},
	}
	for _, s := range services {
		if err := mw.Publish(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFacadeParetoCompose drives the Pareto-front mode through the
// public API: the front is the exact non-dominated set, the composition
// binds its scalarized-best member, and the selection is documented in
// the front-size metric and the flight recorder.
func TestFacadeParetoCompose(t *testing.T) {
	hub := obs.NewHub()
	mw, err := qasom.New(qasom.Options{Seed: 7, ParetoMode: true, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	publishParetoShop(t, mw)

	comp, err := mw.Compose(qasom.Request{
		Task: paretoShopTask,
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 500},
			{Property: "price", Bound: 100},
		},
		Objectives: []string{"responseTime", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Feasible() {
		t.Fatal("pareto composition should be feasible")
	}
	front := comp.Front()
	if len(front) != 4 {
		t.Fatalf("front size %d, want 4 (one per bookshop trade-off point)", len(front))
	}
	if got := comp.SelectionStats().FrontSize; got != len(front) {
		t.Fatalf("SelectionStats.FrontSize = %d, front has %d members", got, len(front))
	}
	if !reflect.DeepEqual(front[0].Bindings, comp.Bindings()) {
		t.Fatalf("front[0] bindings %v differ from the composition's %v", front[0].Bindings, comp.Bindings())
	}
	if front[0].Utility != comp.Utility() {
		t.Fatalf("front[0] utility %v, composition utility %v", front[0].Utility, comp.Utility())
	}
	seen := map[string]bool{}
	for _, m := range front {
		if m.Utility > comp.Utility() {
			t.Fatalf("front member utility %v exceeds the scalarized best %v", m.Utility, comp.Utility())
		}
		seen[m.Bindings["buy"]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("front members bind %d distinct bookshops, want 4: %v", len(seen), seen)
	}

	snap := hub.Metrics.Histogram("qasom_pareto_front_size", "", nil).Snapshot()
	if snap.Count != 1 || snap.Sum != 4 {
		t.Fatalf("qasom_pareto_front_size: count=%d sum=%v, want one observation of 4", snap.Count, snap.Sum)
	}
	recs := hub.Flight.Snapshot(obs.FlightQuery{})
	found := false
	for _, rec := range recs {
		for _, ev := range rec.Events {
			if ev == fmt.Sprintf("pareto-front-size=%d", len(front)) {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no pareto-front-size event in flight records: %+v", recs)
	}
}

// TestFacadeParetoOptionConflicts pins the option-validation surface:
// Pareto + plan cache, Pareto + distributed, objectives without Pareto
// mode and unknown objective names are all rejected with clear errors.
func TestFacadeParetoOptionConflicts(t *testing.T) {
	if _, err := qasom.New(qasom.Options{ParetoMode: true, SelectionCacheSize: 64}); err == nil ||
		!strings.Contains(err.Error(), "SelectionCacheSize") {
		t.Fatalf("ParetoMode + SelectionCacheSize: got %v, want a cache-conflict error", err)
	}

	hub := obs.NewHub()
	mw, err := qasom.New(qasom.Options{Seed: 3, ParetoMode: true, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	publishParetoShop(t, mw)

	if _, err := mw.Compose(qasom.Request{Task: paretoShopTask, Distributed: true}); err == nil ||
		!strings.Contains(err.Error(), "centralized-only") {
		t.Fatalf("ParetoMode + Distributed: got %v, want centralized-only error", err)
	}
	if _, err := mw.Compose(qasom.Request{
		Task:       paretoShopTask,
		Objectives: []string{"responseTime", "karma"},
	}); err == nil || !strings.Contains(err.Error(), "karma") {
		t.Fatalf("unknown objective: got %v, want an error naming it", err)
	}

	scalar, err := qasom.New(qasom.Options{Seed: 3, Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	defer scalar.Close()
	publishParetoShop(t, scalar)
	if _, err := scalar.Compose(qasom.Request{
		Task:       paretoShopTask,
		Objectives: []string{"responseTime", "price"},
	}); err == nil || !strings.Contains(err.Error(), "ParetoMode") {
		t.Fatalf("objectives without ParetoMode: got %v, want an error pointing at the option", err)
	}
	if comp, err := scalar.Compose(qasom.Request{Task: paretoShopTask}); err != nil {
		t.Fatal(err)
	} else if len(comp.Front()) != 0 {
		t.Fatal("scalar composition must have an empty front")
	}
}

// TestFacadeDependencies checks the dependency surface of the public
// API: rules steer the selection, malformed rules error, and
// dependency-carrying requests bypass the plan cache (rules are not
// part of the plan key).
func TestFacadeDependencies(t *testing.T) {
	mw, err := qasom.New(qasom.Options{Seed: 11, Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	publishParetoShop(t, mw)

	req := qasom.Request{
		Task: paretoShopTask,
		Dependencies: []qasom.Dependency{
			// Whatever browse binds, buy must take the slow cheap shop —
			// away from the scalar optimum, so the rule's effect shows.
			{Kind: "requires", From: "browse", To: "buy", ToServices: []string{"bookshop-3"}},
		},
	}
	comp, err := mw.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.Bindings()["buy"]; got != "bookshop-3" {
		t.Fatalf("requires rule ignored: buy bound to %s, want bookshop-3", got)
	}
	if !comp.Feasible() {
		t.Fatal("dependency-constrained composition should be feasible")
	}

	// Same request again: no cache hit — dependency requests always run
	// a fresh selection.
	again, err := mw.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.SelectionStats().CacheHit {
		t.Fatal("dependency-carrying request was served from the plan cache")
	}

	// The dependency-free twin still uses the cache (second call hits).
	free := qasom.Request{Task: paretoShopTask}
	if _, err := mw.Compose(free); err != nil {
		t.Fatal(err)
	}
	cached, err := mw.Compose(free)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.SelectionStats().CacheHit {
		t.Fatal("dependency-free repeat compose should hit the plan cache")
	}

	// Colocated rule: browse is on devA, so buy must land on devA's
	// bookshop regardless of QoS.
	coloc, err := mw.Compose(qasom.Request{
		Task: paretoShopTask,
		Dependencies: []qasom.Dependency{
			{Kind: "colocated", From: "browse", To: "buy"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := coloc.Bindings()["buy"]; got != "bookshop-0" {
		t.Fatalf("colocated rule ignored: buy bound to %s, want bookshop-0 (devA)", got)
	}

	if _, err := mw.Compose(qasom.Request{
		Task: paretoShopTask,
		Dependencies: []qasom.Dependency{
			{Kind: "needs", From: "browse", To: "buy", ToServices: []string{"bookshop-1"}},
		},
	}); err == nil || !strings.Contains(err.Error(), "unknown dependency kind") {
		t.Fatalf("bad kind: got %v, want unknown-kind error", err)
	}
}
