package qasom_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"qasom"
	"qasom/internal/obs"
)

// scrapeValue extracts the value of a label-less metric from a
// Prometheus text exposition; ok is false when the series is absent.
func scrapeValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// TestTelemetryUnderConcurrency drives compositions and executions from
// many goroutines while scraping /metrics and reading span snapshots —
// the race detector checks for torn state, the assertions for monotonic
// counters and a coherent span hierarchy.
func TestTelemetryUnderConcurrency(t *testing.T) {
	hub := obs.NewHub()
	mw, err := qasom.New(qasom.Options{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	const (
		workers   = 4
		perWorker = 5
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				comp, err := mw.ComposeContext(context.Background(), qasom.Request{Task: behaviourA})
				if err != nil {
					errCh <- err
					return
				}
				if _, err := mw.Execute(context.Background(), comp); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	// Scrape and read spans concurrently with the pipeline work,
	// asserting counter monotonicity across scrapes.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	prev := -1.0
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape read: %v", err)
		}
		if v, ok := scrapeValue(string(body), "qasom_compose_total"); ok {
			if v < prev {
				t.Fatalf("qasom_compose_total went backwards: %g -> %g", prev, v)
			}
			prev = v
		}
		hub.Tracer.Snapshot() // concurrent span reads must be race-free
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final scrape: every pipeline stage reported.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	total := float64(workers * perWorker)
	for _, name := range []string{"qasom_compose_total", "qasom_execute_total"} {
		v, ok := scrapeValue(string(body), name)
		if !ok {
			t.Fatalf("metric %s missing from scrape", name)
		}
		if v != total {
			t.Errorf("%s = %g, want %g", name, v, total)
		}
	}
	for _, want := range []string{
		`qasom_compose_phase_seconds_count{phase="lookup"}`,
		`qasom_compose_phase_seconds_count{phase="local"}`,
		`qasom_compose_phase_seconds_count{phase="global"}`,
		"qasom_exec_invocations_total",
		"qasom_monitor_observations_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// Span hierarchy: compose roots with the QASSA phases as children.
	spans := hub.Tracer.Snapshot()
	if len(spans) == 0 {
		t.Fatal("tracer recorded no root spans")
	}
	var sawCompose, sawLocalChild bool
	for _, s := range spans {
		if s.Name != "compose" {
			continue
		}
		sawCompose = true
		for _, c := range s.Children {
			if c.Name == "qassa.local" {
				sawLocalChild = true
			}
		}
	}
	if !sawCompose {
		t.Error("no compose root span recorded")
	}
	if !sawLocalChild {
		t.Error("compose spans have no qassa.local child")
	}
}

// seedMall publishes the shopping environment into an existing
// middleware instance (newMall creates its own with default options).
func seedMall(t *testing.T, mw *qasom.Middleware) {
	t.Helper()
	specs := []struct {
		prefix, capability string
	}{
		{"browse", "BrowseCatalog"},
		{"order", "OrderItem"},
		{"pay", "CardPayment"},
		{"fulfil", "Shopping"},
		{"mpay", "MobilePayment"},
	}
	for _, s := range specs {
		for i := 0; i < 4; i++ {
			err := mw.Publish(qasom.Service{
				ID:         s.prefix + "-" + strconv.Itoa(i),
				Capability: s.capability,
				QoS:        stdQoS(40 + float64(5*i)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mw.RegisterTaskClass("shopping", behaviourA, behaviourB); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityAccessorDefaultHub checks that instances without an
// explicit hub share the process-wide default.
func TestObservabilityAccessorDefaultHub(t *testing.T) {
	mw, err := qasom.New()
	if err != nil {
		t.Fatal(err)
	}
	if mw.Observability() != obs.Default() {
		t.Error("nil Options.Obs should mean the process-wide default hub")
	}
	own := obs.NewHub()
	mw2, err := qasom.New(qasom.Options{Obs: own})
	if err != nil {
		t.Fatal(err)
	}
	if mw2.Observability() != own {
		t.Error("explicit hub not returned by Observability")
	}
}
