// Quickstart: publish a handful of QoS-annotated services, submit a
// user task with global QoS constraints, let QASSA select the best
// composition and execute it with the full adaptation loop.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"qasom"
)

const shoppingTask = `<process name="quick-shopping" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <invoke activity="buy" concept="BookSale"/>
    <invoke activity="pay" concept="Payment"/>
  </sequence>
</process>`

func main() {
	mw, err := qasom.New()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Providers publish services with heterogeneous QoS. Note the
	// mixed vocabularies: "Delay" and "Uptime" resolve through the
	// shared ontology.
	services := []qasom.Service{
		{ID: "catalog-fast", Capability: "BrowseCatalog",
			QoS: map[string]float64{"responseTime": 30, "price": 0, "availability": 0.99, "reliability": 0.95, "throughput": 80}},
		{ID: "catalog-slow", Capability: "BrowseCatalog",
			QoS: map[string]float64{"responseTime": 200, "price": 0, "availability": 0.90, "reliability": 0.9, "throughput": 30}},
		{ID: "bookshop-premium", Capability: "BookSale",
			QoS: map[string]float64{"Delay": 50, "price": 12, "Uptime": 0.99, "reliability": 0.97, "throughput": 60}},
		{ID: "bookshop-budget", Capability: "BookSale",
			QoS: map[string]float64{"Delay": 120, "price": 6, "Uptime": 0.92, "reliability": 0.9, "throughput": 40}},
		{ID: "pay-card", Capability: "CardPayment",
			QoS: map[string]float64{"responseTime": 80, "price": 0.5, "availability": 0.97, "reliability": 0.96, "throughput": 50}},
		{ID: "pay-mobile", Capability: "MobilePayment",
			QoS: map[string]float64{"responseTime": 40, "price": 1.0, "availability": 0.95, "reliability": 0.94, "throughput": 70}},
	}
	for _, s := range services {
		if err := mw.Publish(s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("published %d services\n", mw.ServiceCount())

	// 2. The user submits the task with global QoS constraints and
	// preferences (cheap over fast).
	comp, err := mw.Compose(qasom.Request{
		Task: shoppingTask,
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 300},
			{Property: "price", Bound: 10},
			{Property: "availability", Bound: 0.8},
		},
		Weights: map[string]float64{"price": 3, "responseTime": 1, "availability": 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("feasible: %v, utility: %.3f\n", comp.Feasible(), comp.Utility())
	bindings := comp.Bindings()
	acts := make([]string, 0, len(bindings))
	for a := range bindings {
		acts = append(acts, a)
	}
	sort.Strings(acts)
	for _, a := range acts {
		fmt.Printf("  %-8s -> %s (alternates: %v)\n", a, bindings[a], comp.Alternates(a))
	}
	agg := comp.AggregatedQoS()
	fmt.Printf("aggregated QoS: responseTime=%.0fms price=%.2fEUR availability=%.3f\n",
		agg["responseTime"], agg["price"], agg["availability"])

	// 3. Execute with dynamic binding, monitoring and adaptation.
	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: completed=%v invocations=%d failures=%d substitutions=%d in %v\n",
		report.Completed, report.Invocations, report.Failures, report.Substitutions, report.Duration)
}
