// Pervasive medical visit (Chapter I scenario): Bob plans his hospital
// visit from the waiting room. The hospital information system composes
// registration, diagnosis, pharmacy and payment services with QoS
// guarantees; when Bob's assigned doctor becomes unavailable mid-visit,
// the middleware dynamically re-assigns him to another doctor of the
// same specialty (service substitution) without restarting the visit.
package main

import (
	"context"
	"fmt"
	"log"

	"qasom"
)

const visitTask = `<process name="medical-visit" concept="MedicalService">
  <sequence>
    <invoke activity="register" concept="PatientRegistration" outputs="PatientRecord"/>
    <invoke activity="diagnose" concept="DoctorDiagnosis" inputs="PatientRecord" outputs="Prescription"/>
    <flow>
      <invoke activity="pharmacy" concept="PharmacyOrder" inputs="Prescription"/>
      <invoke activity="pay" concept="Payment" inputs="PatientRecord" outputs="Receipt"/>
    </flow>
  </sequence>
</process>`

func main() {
	mw, err := qasom.New(qasom.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The hospital runs several parallel desks and doctors per role.
	publish := func(id, capability string, rt, price, avail float64, in, out []string) {
		if err := mw.Publish(qasom.Service{
			ID: id, Capability: capability, Inputs: in, Outputs: out,
			QoS: map[string]float64{
				"responseTime": rt, "price": price, "availability": avail,
				"reliability": 0.93, "throughput": 30,
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	publish("desk-1", "PatientRegistration", 120, 0, 0.99, nil, []string{"PatientRecord"})
	publish("desk-2", "PatientRegistration", 60, 0, 0.95, nil, []string{"PatientRecord"})
	publish("dr-martin", "GeneralPracticeDiagnosis", 900, 25, 0.9, []string{"PatientRecord"}, []string{"Prescription"})
	publish("dr-chen", "GeneralPracticeDiagnosis", 1200, 25, 0.95, []string{"PatientRecord"}, []string{"Prescription"})
	publish("dr-okafor", "CardiologyDiagnosis", 1500, 40, 0.92, []string{"PatientRecord"}, []string{"Prescription"})
	publish("pharmacy-a", "PharmacyOrder", 300, 12, 0.97, []string{"Prescription"}, nil)
	publish("pharmacy-b", "PharmacyOrder", 450, 9, 0.93, []string{"Prescription"}, nil)
	publish("cashier", "CardPayment", 90, 0, 0.98, []string{"PatientRecord"}, []string{"Receipt"})
	publish("app-pay", "MobilePayment", 45, 0, 0.95, []string{"PatientRecord"}, []string{"Receipt"})

	// Bob wants the visit done within 45 simulated minutes (2700 units)
	// and under 60 EUR, preferring short waits.
	comp, err := mw.Compose(qasom.Request{
		Task: visitTask,
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 2700},
			{Property: "price", Bound: 60},
			{Property: "availability", Bound: 0.7},
		},
		Weights: map[string]float64{"responseTime": 2, "availability": 2, "price": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visit plan (feasible=%v):\n", comp.Feasible())
	for _, act := range []string{"register", "diagnose", "pharmacy", "pay"} {
		fmt.Printf("  %-9s -> %s\n", act, comp.Bindings()[act])
	}
	agg := comp.AggregatedQoS()
	fmt.Printf("expected: %.0f time units, %.0f EUR, availability %.2f\n",
		agg["responseTime"], agg["price"], agg["availability"])

	// Bob's doctor is pulled into an emergency just before the
	// consultation: the service goes down but stays advertised.
	doctor := comp.Bindings()["diagnose"]
	fmt.Printf("\n%s is called to an emergency — unavailable!\n", doctor)
	mw.SetDown(doctor)

	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visit executed: completed=%v substitutions=%d\n", report.Completed, report.Substitutions)
	fmt.Printf("Bob was re-assigned to %s (same specialty, next-best QoS)\n", comp.Bindings()["diagnose"])
}
