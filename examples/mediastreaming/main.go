// Pervasive entertainment (Chapter I scenario): in a holiday camp, Bob
// asks for the Top-10 chart and streams the first song from a neighbour's
// device. As he walks around the camp the stream's QoS degrades; the
// middleware's proactive monitoring spots the trend before the
// constraint actually breaks and substitutes a better streaming service.
// When every video-capable device finally leaves the camp, behavioural
// adaptation falls back to the audio-only behaviour of the task class.
package main

import (
	"context"
	"fmt"
	"log"

	"qasom"
)

const videoTask = `<process name="camp-video" concept="Entertainment">
  <sequence>
    <invoke activity="chart" concept="TopTenList" outputs="SongList"/>
    <invoke activity="stream" concept="VideoStreaming" inputs="SongList" outputs="MediaStreamData"/>
  </sequence>
</process>`

const audioTask = `<process name="camp-audio" concept="Entertainment">
  <sequence>
    <invoke activity="chart2" concept="ChartList" outputs="SongList"/>
    <invoke activity="audio" concept="AudioStreaming" inputs="SongList" outputs="MediaStreamData"/>
  </sequence>
</process>`

func main() {
	mw, err := qasom.New(qasom.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	publish := func(id, capability string, rt, avail float64) {
		var in, out []string
		switch capability {
		case "TopTenList", "ChartList":
			out = []string{"SongList"}
		default:
			in, out = []string{"SongList"}, []string{"MediaStreamData"}
		}
		if err := mw.Publish(qasom.Service{
			ID: id, Capability: capability, Inputs: in, Outputs: out,
			QoS: map[string]float64{
				"responseTime": rt, "price": 0, "availability": avail,
				"reliability": 0.9, "throughput": 50,
			},
			Noise: 0.02,
		}); err != nil {
			log.Fatal(err)
		}
	}
	publish("chart-anna", "TopTenList", 60, 0.95)
	publish("chart-leo", "ChartList", 90, 0.9)
	publish("video-mia", "VideoStreaming", 120, 0.95)
	publish("video-sam", "VideoStreaming", 150, 0.9)
	publish("audio-kim", "AudioStreaming", 70, 0.93)
	publish("audio-raj", "AudioStreaming", 80, 0.96)

	if err := mw.RegisterTaskClass("camp-entertainment", videoTask, audioTask); err != nil {
		log.Fatal(err)
	}

	comp, err := mw.Compose(qasom.Request{
		Task:        videoTask,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 320}},
		Weights:     map[string]float64{"responseTime": 2, "availability": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watching the clip: chart=%s stream=%s (rt budget 320)\n",
		comp.Bindings()["chart"], comp.Bindings()["stream"])

	// Bob wanders off; the signal to the chosen streaming device decays
	// a little with every segment. Each Execute = one streamed segment.
	streamer := comp.Bindings()["stream"]
	for segment := 1; segment <= 4; segment++ {
		if err := mw.Degrade(streamer, map[string]float64{"responseTime": 35}); err != nil {
			log.Fatal(err)
		}
		if _, err := mw.Execute(context.Background(), comp); err != nil {
			log.Fatal(err)
		}
		a := comp.Assess(3)
		fmt.Printf("segment %d: rt=%.0fms current-violations=%v predicted=%v\n",
			segment, a.Current["responseTime"], a.Violated, a.PredictedViolated)
		if !a.Healthy() {
			sub, err := comp.Substitute("stream")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  proactive adaptation: stream moved %s -> %s\n", streamer, sub)
			streamer = sub
			break
		}
	}

	// Later, both video devices leave the camp: video streaming is
	// impossible, so the class's audio-only behaviour takes over.
	fmt.Println("\nvideo devices leave the camp...")
	mw.Withdraw("video-mia")
	mw.Withdraw("video-sam")
	comp2, err := mw.Compose(qasom.Request{
		Task:        videoTask,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 320}},
	})
	if err != nil {
		// Expected: no video services at composition time.
		fmt.Printf("video composition impossible (%v)\n", err)
	}
	_ = comp2
	audio, err := mw.Compose(qasom.Request{
		Task:        audioTask,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 320}},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := mw.Execute(context.Background(), audio)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audio-only behaviour selected: chart=%s audio=%s — completed=%v\n",
		audio.Bindings()["chart2"], audio.Bindings()["audio"], report.Completed)
}
