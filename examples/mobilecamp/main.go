// Mobile holiday camp: the entertainment scenario with a real mobility
// model. Streaming providers are people carrying devices around the
// camp; the wireless link to each provider degrades with distance and
// breaks beyond radio range. As Bob walks, the middleware's monitoring
// sees the delivered QoS decay and the Heal controller re-binds the
// stream to whoever is close enough — no manual QoS bookkeeping at all.
package main

import (
	"context"
	"fmt"
	"log"

	"qasom"
)

const campTask = `<process name="camp-stream" concept="Entertainment">
  <sequence>
    <invoke activity="chart" concept="TopTenList"/>
    <invoke activity="stream" concept="AudioStreaming"/>
  </sequence>
</process>`

func main() {
	mw, err := qasom.New(qasom.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	// Camp: 100×100 arena, 45-unit radio range, 3ms extra latency per
	// distance unit. Bob starts at the centre.
	if err := mw.EnableMobility(100, 45, 3); err != nil {
		log.Fatal(err)
	}

	publish := func(id, capability, device string, x, y, speed float64) {
		if err := mw.Publish(qasom.Service{
			ID: id, Capability: capability, Device: device,
			QoS: map[string]float64{
				"responseTime": 60, "price": 0, "availability": 0.95,
				"reliability": 0.9, "throughput": 50,
			},
		}); err != nil {
			log.Fatal(err)
		}
		if err := mw.PlaceDevice(device, x, y, speed); err != nil {
			log.Fatal(err)
		}
	}
	publish("charts", "TopTenList", "kiosk", 50, 52, 0)
	publish("stream-anna", "AudioStreaming", "anna", 48, 50, 0) // next to Bob
	publish("stream-leo", "AudioStreaming", "leo", 20, 25, 0)   // south-west corner area
	publish("stream-mia", "AudioStreaming", "mia", 80, 75, 0)   // north-east

	comp, err := mw.Compose(qasom.Request{
		Task:        campTask,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 250}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bob starts at (50,50); streaming from %s (signal %.2f)\n",
		comp.Bindings()["stream"], mw.SignalStrength("anna"))

	// Bob walks toward the north-east corner, one segment per step.
	path := []struct{ x, y float64 }{{58, 58}, {66, 66}, {74, 72}, {82, 78}}
	for i, p := range path {
		mw.MoveUser(p.x, p.y)
		if _, err := mw.Execute(context.Background(), comp); err != nil {
			log.Fatalf("segment %d: %v", i+1, err)
		}
		a := comp.Assess(3)
		fmt.Printf("step %d @(%.0f,%.0f): delivered rt=%.0fms violations=%v predicted=%v\n",
			i+1, p.x, p.y, a.Current["responseTime"], a.Violated, a.PredictedViolated)
		if !a.Healthy() {
			heal, err := comp.Heal(3)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range heal.Substitutions {
				fmt.Printf("  healed: %s\n", s)
			}
			if heal.BehaviourSwitched {
				fmt.Printf("  behaviour switched to %s\n", comp.Behaviour())
			}
		}
	}
	fmt.Printf("final stream provider: %s\n", comp.Bindings()["stream"])
}
