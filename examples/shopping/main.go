// Pervasive shopping (Chapter I scenario): Bob orders a book, a DVD and
// pays, from the lounge hall of a commercial centre. The example then
// replays the same task in an open-air market — an ad hoc,
// infrastructure-less environment — where QASSA's local phase runs
// distributed on the vendors' devices, and finally shows what happens
// when a chosen shop's device leaves the market mid-composition.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"qasom"
)

const shoppingTask = `<process name="bob-shopping" concept="Shopping">
  <sequence>
    <invoke activity="search" concept="SearchItem" outputs="ItemList"/>
    <flow>
      <invoke activity="book" concept="BookSale" inputs="ItemList" outputs="OrderRecord"/>
      <invoke activity="dvd" concept="DVDSale" inputs="ItemList" outputs="OrderRecord"/>
    </flow>
    <invoke activity="pay" concept="Payment" inputs="OrderRecord" outputs="Receipt"/>
  </sequence>
</process>`

// alternative behaviour: a single bundle shop handles both items.
const bundleTask = `<process name="bob-shopping-bundle" concept="Shopping">
  <sequence>
    <invoke activity="search2" concept="SearchItem" outputs="ItemList"/>
    <invoke activity="bundle" concept="Shopping" inputs="ItemList" outputs="OrderRecord"/>
    <invoke activity="mpay" concept="MobilePayment" inputs="OrderRecord" outputs="Receipt"/>
  </sequence>
</process>`

func populate(mw *qasom.Middleware, rng *rand.Rand) error {
	shops := []struct {
		prefix, capability string
		count              int
		inputs, outputs    []string
	}{
		{"search", "SearchItem", 3, nil, []string{"ItemList"}},
		{"bookshop", "BookSale", 5, []string{"ItemList"}, []string{"OrderRecord"}},
		{"dvdshop", "DVDSale", 5, []string{"ItemList"}, []string{"OrderRecord"}},
		{"kiosk", "Shopping", 3, []string{"ItemList"}, []string{"OrderRecord"}}, // bundle shops
		{"cashdesk", "CardPayment", 3, []string{"OrderRecord"}, []string{"Receipt"}},
		{"mpay", "MobilePayment", 3, []string{"OrderRecord"}, []string{"Receipt"}},
	}
	for _, s := range shops {
		for i := 0; i < s.count; i++ {
			svc := qasom.Service{
				ID:         fmt.Sprintf("%s-%d", s.prefix, i),
				Capability: s.capability,
				Device:     fmt.Sprintf("device-%s-%d", s.prefix, i),
				Inputs:     s.inputs,
				Outputs:    s.outputs,
				QoS: map[string]float64{
					"responseTime": 30 + rng.Float64()*120,
					"price":        2 + rng.Float64()*10,
					"availability": 0.85 + rng.Float64()*0.14,
					"reliability":  0.85 + rng.Float64()*0.14,
					"throughput":   20 + rng.Float64()*60,
				},
				Noise: 0.05,
			}
			if err := mw.Publish(svc); err != nil {
				return err
			}
		}
	}
	return nil
}

func describe(label string, comp *qasom.Composition) {
	agg := comp.AggregatedQoS()
	fmt.Printf("%s: feasible=%v utility=%.3f rt=%.0fms price=%.2fEUR avail=%.3f\n",
		label, comp.Feasible(), comp.Utility(), agg["responseTime"], agg["price"], agg["availability"])
	for _, act := range []string{"search", "book", "dvd", "pay"} {
		if svc, ok := comp.Bindings()[act]; ok {
			fmt.Printf("  %-7s -> %s\n", act, svc)
		}
	}
}

func main() {
	mw, err := qasom.New(qasom.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	if err := populate(mw, rng); err != nil {
		log.Fatal(err)
	}
	if err := mw.RegisterTaskClass("shopping", shoppingTask, bundleTask); err != nil {
		log.Fatal(err)
	}

	request := qasom.Request{
		Task: shoppingTask,
		Constraints: []qasom.Constraint{
			{Property: "price", Bound: 30},         // Bob's budget
			{Property: "responseTime", Bound: 400}, // total waiting time
			{Property: "availability", Bound: 0.6},
		},
		Weights: map[string]float64{"price": 2, "responseTime": 1, "availability": 1, "reliability": 1, "throughput": 0.5},
	}

	// --- Commercial centre: centralized shopping platform -----------
	fmt.Println("== commercial centre (centralized platform) ==")
	comp, err := mw.Compose(request)
	if err != nil {
		log.Fatal(err)
	}
	describe("selected composition", comp)
	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: completed=%v substitutions=%d failures=%d\n\n",
		report.Completed, report.Substitutions, report.Failures)

	// --- Open-air market: ad hoc, distributed local phase -----------
	fmt.Println("== open-air market (ad hoc, distributed QASSA) ==")
	adhoc := request
	adhoc.Distributed = true
	comp2, err := mw.Compose(adhoc)
	if err != nil {
		log.Fatal(err)
	}
	describe("distributed selection", comp2)

	// A vendor's device leaves the market before Bob picks up his book:
	// the invocation fails and the middleware substitutes on the fly.
	leaving := comp2.Bindings()["book"]
	fmt.Printf("vendor %s leaves the market!\n", leaving)
	mw.Withdraw(leaving)
	report2, err := mw.Execute(context.Background(), comp2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: completed=%v substitutions=%d (book now served by %s)\n",
		report2.Completed, report2.Substitutions, comp2.Bindings()["book"])
	if report2.BehaviourSwitches > 0 {
		fmt.Printf("behavioural adaptation engaged: now running %q\n", comp2.Behaviour())
	}
}
