package qasom

import (
	"container/list"
	"fmt"
	"math"
	"strings"

	"sync"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// planCache is the bounded selection-plan cache of the serving engine:
// completed (non-distributed) selections are stored under a key derived
// from the task fingerprint, constraints, weights and aggregation
// approach, together with the registry-epoch snapshot of every
// capability the task touches. A lookup whose fresh epoch snapshot
// matches the stored one returns a deep copy of the Result with zero
// selection work — bit-identical to recomputation, because selections
// are deterministic per seed and the epochs certify that no candidate
// the request could see has changed. An epoch mismatch drops the entry
// (the registry churned underneath it); capacity overflow evicts the
// least-recently-used entry.
//
// Both put and get deep-copy the Result, so cached state is never
// aliased by a live Composition (the adaptation runtime mutates its
// Result during substitution).
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions, invalidations *obs.Counter
}

type planEntry struct {
	key    string
	epochs []uint64
	res    *core.Result
}

// defaultPlanCacheSize bounds the cache when Options.SelectionCacheSize
// is zero.
const defaultPlanCacheSize = 128

func newPlanCache(capacity int, r *obs.Registry) *planCache {
	if capacity == 0 {
		capacity = defaultPlanCacheSize
	}
	if capacity < 0 {
		return nil // caching disabled
	}
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		hits: r.Counter("qasom_plan_cache_hits_total",
			"Selections served from the plan cache (zero selection work)."),
		misses: r.Counter("qasom_plan_cache_misses_total",
			"Plan-cache lookups that had to run a fresh selection."),
		evictions: r.Counter("qasom_plan_cache_evictions_total",
			"Plan-cache entries evicted by the LRU capacity bound."),
		invalidations: r.Counter("qasom_plan_cache_epoch_invalidations_total",
			"Plan-cache entries dropped because a capability epoch moved (registry churn)."),
	}
}

// len returns the number of live entries.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// planOutcome classifies one cache probe for the flight recorder:
// served from cache, missed because no entry existed, or missed because
// the stored epoch snapshot went stale (registry churn).
type planOutcome int

const (
	planHit planOutcome = iota
	planMissCold
	planMissEpoch
)

// missCause renders the outcome as the flight-record CacheMiss cause.
func (o planOutcome) missCause() string {
	switch o {
	case planMissCold:
		return "cold"
	case planMissEpoch:
		return "epoch"
	default:
		return ""
	}
}

// get returns a deep copy of the entry under key when its stored epoch
// snapshot equals now, and nil otherwise.
func (c *planCache) get(key string, now []uint64) *core.Result {
	res, _ := c.lookup(key, now)
	return res
}

// lookup is get with the probe outcome attached. A stale entry (epoch
// mismatch) is removed on sight and reported as planMissEpoch.
func (c *planCache) lookup(key string, now []uint64) (*core.Result, planOutcome) {
	if c == nil {
		return nil, planMissCold
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, planMissCold
	}
	e := el.Value.(*planEntry)
	if !equalEpochs(e.epochs, now) {
		c.ll.Remove(el)
		delete(c.items, key)
		c.mu.Unlock()
		c.invalidations.Inc()
		c.misses.Inc()
		return nil, planMissEpoch
	}
	c.ll.MoveToFront(el)
	res := e.res // immutable once stored; safe to clone outside the lock
	c.mu.Unlock()
	c.hits.Inc()
	return res.Clone(), planHit
}

// put stores a deep copy of res under key with its epoch snapshot,
// evicting the least-recently-used entry beyond capacity.
func (c *planCache) put(key string, epochs []uint64, res *core.Result) {
	if c == nil {
		return
	}
	cp := res.Clone()
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*planEntry)
		e.epochs = epochs
		e.res = cp
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, epochs: epochs, res: cp})
	evicted := false
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*planEntry).key)
		evicted = true
	}
	c.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	}
}

func equalEpochs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// planCacheKey derives the cache key of a prepared selection request:
// the task-tree fingerprint plus every input that steers the selection
// (approach, constraints in request order, the effective weight vector).
// Selector options and the seed are fixed per Middleware and the cache
// is per Middleware, so they need no key component.
func planCacheKey(t *task.Task, req *core.Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%016x|a%d", t.Fingerprint(), req.Approach)
	for _, c := range req.Constraints {
		fmt.Fprintf(&b, "|c:%s=%x", c.Property, math.Float64bits(c.Bound))
	}
	for _, w := range req.Weights {
		fmt.Fprintf(&b, "|w:%x", math.Float64bits(w))
	}
	return b.String()
}

// planEpochs snapshots, in task order, the registry epoch of every
// capability the task's activities require (the subsumption-closure
// epochs bumped by any publish/withdraw/QoS-update of a matching
// service), with the ontology version appended. The snapshot is
// tenant-scoped and touches only the registry shards those capabilities
// hash to — churn in another tenant, or under capabilities in other
// shards, leaves it untouched. Taken BEFORE candidate lookup: if the
// registry churns between snapshot and selection — even if only some
// shards had landed their updates at snapshot time — the stored
// snapshot is already stale and the next lookup recomputes —
// conservative, never incorrect.
func (m *Middleware) planEpochs(dst []uint64, t *task.Task) []uint64 {
	acts := t.Activities()
	concepts := make([]semantics.ConceptID, len(acts))
	for i, a := range acts {
		concepts[i] = a.Concept
	}
	return m.reg.CapabilityEpochs(dst, concepts...)
}
