package qasom

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// planCache is the bounded selection-plan cache of the serving engine:
// completed (non-distributed) selections are stored under a key derived
// from the task fingerprint, constraints, weights and aggregation
// approach, together with the registry-epoch snapshot of every
// capability the task touches. A lookup whose fresh epoch snapshot
// matches the stored one returns a deep copy of the Result with zero
// selection work — bit-identical to recomputation, because selections
// are deterministic per seed and the epochs certify that no candidate
// the request could see has changed. An epoch mismatch drops the entry
// (the registry churned underneath it); capacity overflow evicts the
// least-recently-touched entry of the overflowing segment.
//
// The cache is lock-striped: keys hash (FNV-1a) to one of a power-of-two
// number of segments, each an atomically-swapped immutable map with its
// own writer mutex and capacity share. The hit path — map load, epoch
// compare, recency stamp, deep copy — acquires no mutex at all, so
// concurrent tenants hitting warm plans never serialize; only writers
// (put, stale-entry removal, eviction) take their segment's lock.
// Recency is an approximate LRU over per-entry atomic touch ticks; with
// a single segment it degenerates to exact LRU, which the unit tests
// pin.
//
// Both put and get deep-copy the Result, so cached state is never
// aliased by a live Composition (the adaptation runtime mutates its
// Result during substitution).
type planCache struct {
	segMask uint32
	segCap  int
	segs    []planSegment

	hits, misses, evictions, invalidations *obs.Counter
	// segHits are the per-segment hit counters, label pre-resolved so the
	// hit path never formats.
	segHits []*obs.Counter
}

// planSegment is one lock domain of the cache. Padded so adjacent
// segments' tick counters and map pointers never false-share a cache
// line.
type planSegment struct {
	// items is the segment's immutable key→entry map, swapped wholesale
	// by writers. Never nil after newPlanCache.
	items atomic.Pointer[map[string]*planEntry]
	// tick is the segment's recency clock; every hit and insert stamps
	// the entry with the next tick.
	tick atomic.Uint64
	mu   sync.Mutex
	_    [64]byte
}

// planEntry is immutable after publication except for the touch stamp;
// put replaces an entry wholesale rather than mutating it in place.
type planEntry struct {
	key    string
	epochs []uint64
	res    *core.Result
	touch  atomic.Uint64
}

// defaultPlanCacheSize bounds the cache when Options.SelectionCacheSize
// is zero.
const defaultPlanCacheSize = 128

// maxPlanCacheSegments bounds the stripe count: beyond ~16 segments the
// per-segment capacity share gets too small to behave like an LRU, and
// the hit path is already lock-free so more stripes buy nothing.
const maxPlanCacheSegments = 16

// planSegments resolves the effective segment count: an explicit request
// is rounded up to a power of two; 0 auto-sizes so each segment keeps a
// useful capacity share (≥8 entries) up to maxPlanCacheSegments.
func planSegments(capacity, requested int) int {
	n := 1
	if requested > 0 {
		for n < requested && n < maxPlanCacheSegments {
			n <<= 1
		}
		return n
	}
	for n < maxPlanCacheSegments && capacity/(n*2) >= 8 {
		n <<= 1
	}
	return n
}

func newPlanCache(capacity, segments int, r *obs.Registry) *planCache {
	if capacity == 0 {
		capacity = defaultPlanCacheSize
	}
	if capacity < 0 {
		return nil // caching disabled
	}
	n := planSegments(capacity, segments)
	c := &planCache{
		segMask: uint32(n - 1),
		segCap:  (capacity + n - 1) / n,
		segs:    make([]planSegment, n),
		hits: r.Counter("qasom_plan_cache_hits_total",
			"Selections served from the plan cache (zero selection work)."),
		misses: r.Counter("qasom_plan_cache_misses_total",
			"Plan-cache lookups that had to run a fresh selection."),
		evictions: r.Counter("qasom_plan_cache_evictions_total",
			"Plan-cache entries evicted by the LRU capacity bound."),
		invalidations: r.Counter("qasom_plan_cache_epoch_invalidations_total",
			"Plan-cache entries dropped because a capability epoch moved (registry churn)."),
		segHits: make([]*obs.Counter, n),
	}
	segHits := r.CounterVec("qasom_plan_cache_segment_hits_total",
		"Plan-cache hits per lock-striped segment (distribution check).", "segment")
	for i := range c.segs {
		empty := make(map[string]*planEntry)
		c.segs[i].items.Store(&empty)
		c.segHits[i] = segHits.With(strconv.Itoa(i))
	}
	return c
}

// fnvKey hashes a cache key for segment routing (FNV-1a).
func fnvKey(key string) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime
	}
	return h
}

// len returns the number of live entries across all segments.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.segs {
		n += len(*c.segs[i].items.Load())
	}
	return n
}

// segments reports the stripe count (test hook).
func (c *planCache) segments() int {
	if c == nil {
		return 0
	}
	return len(c.segs)
}

// planOutcome classifies one cache probe for the flight recorder:
// served from cache, missed because no entry existed, or missed because
// the stored epoch snapshot went stale (registry churn).
type planOutcome int

const (
	planHit planOutcome = iota
	planMissCold
	planMissEpoch
)

// missCause renders the outcome as the flight-record CacheMiss cause.
func (o planOutcome) missCause() string {
	switch o {
	case planMissCold:
		return "cold"
	case planMissEpoch:
		return "epoch"
	default:
		return ""
	}
}

// get returns a deep copy of the entry under key when its stored epoch
// snapshot equals now, and nil otherwise.
func (c *planCache) get(key string, now []uint64) *core.Result {
	res, _ := c.lookup(key, now)
	return res
}

// lookup is get with the probe outcome attached. A stale entry (epoch
// mismatch) is removed on sight and reported as planMissEpoch. The hit
// path takes no locks.
func (c *planCache) lookup(key string, now []uint64) (*core.Result, planOutcome) {
	if c == nil {
		return nil, planMissCold
	}
	idx := fnvKey(key) & c.segMask
	seg := &c.segs[idx]
	e := (*seg.items.Load())[key]
	if e == nil {
		c.misses.Inc()
		return nil, planMissCold
	}
	if !equalEpochs(e.epochs, now) {
		seg.remove(key, e)
		c.invalidations.Inc()
		c.misses.Inc()
		return nil, planMissEpoch
	}
	e.touch.Store(seg.tick.Add(1))
	c.hits.Inc()
	c.segHits[idx].Inc()
	return e.res.Clone(), planHit
}

// remove drops the entry under key, but only if it still is victim (a
// concurrent put of a fresh entry under the same key must win).
func (seg *planSegment) remove(key string, victim *planEntry) {
	seg.mu.Lock()
	cur := *seg.items.Load()
	if cur[key] == victim {
		next := make(map[string]*planEntry, len(cur))
		for k, v := range cur {
			if k != key {
				next[k] = v
			}
		}
		seg.items.Store(&next)
	}
	seg.mu.Unlock()
}

// put stores a deep copy of res under key with its epoch snapshot,
// evicting the segment's least-recently-touched entry beyond the
// segment's capacity share.
func (c *planCache) put(key string, epochs []uint64, res *core.Result) {
	if c == nil {
		return
	}
	seg := &c.segs[fnvKey(key)&c.segMask]
	e := &planEntry{key: key, epochs: epochs, res: res.Clone()}
	e.touch.Store(seg.tick.Add(1))
	evicted := false
	seg.mu.Lock()
	cur := *seg.items.Load()
	next := make(map[string]*planEntry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = e
	if len(next) > c.segCap {
		// Evict the minimum touch stamp. Stamps are unique per segment
		// (every hit and insert takes a fresh tick), so the victim is
		// deterministic.
		var victim string
		minTouch := ^uint64(0)
		for k, v := range next {
			if k == key {
				continue
			}
			if tv := v.touch.Load(); tv < minTouch {
				minTouch = tv
				victim = k
			}
		}
		delete(next, victim)
		evicted = true
	}
	seg.items.Store(&next)
	seg.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	}
}

func equalEpochs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// planCacheKey derives the cache key of a prepared selection request:
// the task-tree fingerprint plus every input that steers the selection
// (approach, constraints in request order, the effective weight vector).
// Selector options and the seed are fixed per Middleware and the cache
// is per Middleware, so they need no key component.
func planCacheKey(t *task.Task, req *core.Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%016x|a%d", t.Fingerprint(), req.Approach)
	for _, c := range req.Constraints {
		fmt.Fprintf(&b, "|c:%s=%x", c.Property, math.Float64bits(c.Bound))
	}
	for _, w := range req.Weights {
		fmt.Fprintf(&b, "|w:%x", math.Float64bits(w))
	}
	return b.String()
}

// planEpochs snapshots, in task order, the registry epoch of every
// capability the task's activities require (the subsumption-closure
// epochs bumped by any publish/withdraw/QoS-update of a matching
// service), with the ontology version appended. The snapshot is
// tenant-scoped and touches only the registry shards those capabilities
// hash to — churn in another tenant, or under capabilities in other
// shards, leaves it untouched. Taken BEFORE candidate lookup: if the
// registry churns between snapshot and selection — even if only some
// shards had landed their updates at snapshot time — the stored
// snapshot is already stale and the next lookup recomputes —
// conservative, never incorrect.
func (m *Middleware) planEpochs(dst []uint64, t *task.Task) []uint64 {
	acts := t.Activities()
	concepts := make([]semantics.ConceptID, len(acts))
	for i, a := range acts {
		concepts[i] = a.Concept
	}
	return m.reg.CapabilityEpochs(dst, concepts...)
}
