package qasom

import (
	"fmt"

	"qasom/internal/contract"
	"qasom/internal/qos"
)

// ContractReport is the public view of one compliance check.
type ContractReport struct {
	// ContractID names the contract.
	ContractID string
	// Service is the provider under contract.
	Service string
	// Compliant reports whether every agreed term held.
	Compliant bool
	// Penalty accrued by this check.
	Penalty float64
	// Tier is the perceived satisfaction ("DelightedTier",
	// "SatisfiedTier", "TolerableTier", "FrustratedTier").
	Tier string
	// Violations lists broken terms as "property: agreed vs observed".
	Violations []string
}

// EstablishContracts creates one quality contract per activity of the
// composition: each selected provider commits to its advertised QoS
// (the terms). penaltyRate scales the penalty accrued per compliance
// check per unit of relative violation. It returns the contract IDs
// keyed by activity.
func (m *Middleware) EstablishContracts(c *Composition, penaltyRate float64) (map[string]string, error) {
	if m.contracts == nil {
		m.contracts = contract.NewManager(m.props, m.ontology)
	}
	res := c.runtime.Result()
	out := make(map[string]string, len(res.Assignment))
	for act, cand := range res.Assignment {
		terms := make(qos.Constraints, 0, m.props.Len())
		for j := 0; j < m.props.Len(); j++ {
			terms = append(terms, qos.Constraint{Property: m.props.At(j).Name, Bound: cand.Vector[j]})
		}
		desc, ok := m.reg.Get(cand.Service.ID)
		if !ok {
			return nil, fmt.Errorf("qasom: service %q no longer published", cand.Service.ID)
		}
		ct, err := m.contracts.Establish("user", desc, terms, penaltyRate)
		if err != nil {
			return nil, fmt.Errorf("qasom: activity %q: %w", act, err)
		}
		out[act] = ct.ID
	}
	return out, nil
}

// CheckContracts evaluates every established contract against the
// run-time monitor and returns the reports (empty when no contracts
// exist).
func (m *Middleware) CheckContracts() []ContractReport {
	if m.contracts == nil {
		return nil
	}
	reports := m.contracts.CheckAll(m.mon)
	out := make([]ContractReport, 0, len(reports))
	for _, r := range reports {
		ct, _ := m.contracts.Get(r.ContractID)
		pub := ContractReport{
			ContractID: r.ContractID,
			Service:    string(ct.Service),
			Compliant:  r.Compliant(),
			Penalty:    r.Penalty,
			Tier:       string(r.Tier),
		}
		for _, v := range r.Violations {
			pub.Violations = append(pub.Violations,
				fmt.Sprintf("%s: agreed %g, observed %g", v.Property, v.Agreed, v.Observed))
		}
		out = append(out, pub)
	}
	return out
}

// AccruedPenalty returns the total penalty a contract has accrued.
func (m *Middleware) AccruedPenalty(contractID string) float64 {
	if m.contracts == nil {
		return 0
	}
	return m.contracts.AccruedPenalty(contractID)
}
