// White-box tests for the selection-plan cache: LRU/eviction mechanics
// and counters on the cache itself, and the raced differential that pins
// "a cached hit is bit-identical to a fresh recomputation at the same
// epoch" while the registry churns underneath.
package qasom

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
)

// fakeResult builds a minimal distinguishable Result for cache-mechanics
// tests (the cache treats results as opaque deep-copied payloads).
func fakeResult(id string, utility float64) *core.Result {
	return &core.Result{
		Assignment: core.Assignment{
			"act": registry.Candidate{
				Service: registry.Description{ID: registry.ServiceID(id)},
				Vector:  qos.Vector{1, 2},
			},
		},
		Utility:  utility,
		Feasible: true,
	}
}

func counterValue(t *testing.T, r *obs.Registry, name string) float64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			if len(m.Series) == 0 {
				return 0
			}
			return m.Series[0].Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

func TestPlanCacheLRUEvictionAndCounters(t *testing.T) {
	r := obs.NewRegistry()
	c := newPlanCache(2, 0, r)
	e := []uint64{7}

	if got := c.get("a", e); got != nil {
		t.Fatal("empty cache should miss")
	}
	c.put("a", e, fakeResult("sa", 0.1))
	c.put("b", e, fakeResult("sb", 0.2))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if got := c.get("a", e); got == nil || got.Utility != 0.1 {
		t.Fatalf("get(a) = %+v", got)
	}
	c.put("c", e, fakeResult("sc", 0.3))
	if c.len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", c.len())
	}
	if got := c.get("b", e); got != nil {
		t.Error("LRU entry b should have been evicted")
	}
	if got := c.get("a", e); got == nil {
		t.Error("recently used entry a should survive")
	}
	if got := c.get("c", e); got == nil {
		t.Error("newest entry c should survive")
	}
	if v := counterValue(t, r, "qasom_plan_cache_evictions_total"); v != 1 {
		t.Errorf("evictions counter = %g, want 1", v)
	}

	// Epoch mismatch drops the entry on sight and counts an invalidation.
	if got := c.get("a", []uint64{8}); got != nil {
		t.Error("epoch mismatch should miss")
	}
	if got := c.get("a", e); got != nil {
		t.Error("stale entry should have been removed, not just skipped")
	}
	if v := counterValue(t, r, "qasom_plan_cache_epoch_invalidations_total"); v != 1 {
		t.Errorf("invalidations counter = %g, want 1", v)
	}
	if hits := counterValue(t, r, "qasom_plan_cache_hits_total"); hits != 3 {
		t.Errorf("hits counter = %g, want 3", hits)
	}

	// Both put and get deep-copy: mutating either side must not leak.
	c.put("x", e, fakeResult("sx", 0.5))
	got := c.get("x", e)
	got.Assignment["act"].Vector[0] = 99
	again := c.get("x", e)
	if again.Assignment["act"].Vector[0] != 1 {
		t.Error("mutation of a returned Result leaked into the cache")
	}
}

func TestPlanCacheSegmentSizing(t *testing.T) {
	for _, tc := range []struct{ capacity, requested, want int }{
		{2, 0, 1},     // tiny caches stay single-segment (exact LRU)
		{16, 0, 2},    // splits only while segments keep ≥8 entries
		{32, 0, 4},    //
		{128, 0, 16},  // the default: 16 segments of 8
		{1024, 0, 16}, // capped at maxPlanCacheSegments
		{128, 1, 1},   // explicit single segment wins
		{128, 3, 4},   // explicit counts round up to a power of two
		{128, 64, 16}, // explicit counts are capped too
	} {
		c := newPlanCache(tc.capacity, tc.requested, obs.NewRegistry())
		if got := c.segments(); got != tc.want {
			t.Errorf("newPlanCache(%d, %d): %d segments, want %d",
				tc.capacity, tc.requested, got, tc.want)
		}
	}
}

// TestPlanCacheShardedRaced storms a multi-segment cache with
// concurrent puts, hits, and epoch invalidations and then checks the
// invariants the churn differential relies on: the capacity bound holds
// per segment, stale entries are really gone, surviving entries return
// deep copies of exactly what was stored, and the counters account for
// the eviction/invalidation traffic. Run under -race it proves the
// lock-free hit path against the copy-on-write writers.
func TestPlanCacheShardedRaced(t *testing.T) {
	r := obs.NewRegistry()
	c := newPlanCache(16, 4, r)
	if c.segments() != 4 {
		t.Fatalf("segments = %d, want 4", c.segments())
	}
	fresh := []uint64{1}
	stale := []uint64{2}
	keyOf := func(i int) string { return fmt.Sprintf("plan-%d", i) }

	const keys = 48 // 3x capacity: every segment must evict
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := keyOf((g*7 + i) % keys)
				switch i % 3 {
				case 0:
					c.put(k, fresh, fakeResult(k, float64((g*7+i)%keys)))
				case 1:
					if got := c.get(k, fresh); got != nil {
						// A hit must carry the payload stored under that key.
						if got.Utility != float64((g*7+i)%keys) {
							t.Errorf("get(%s) returned foreign payload %v", k, got.Utility)
							return
						}
						// Deep copy: scribbling on it must not reach the cache.
						got.Assignment["act"].Vector[0] = 99
					}
				case 2:
					_ = c.get(k, stale) // epoch mismatch: removal-on-sight
				}
			}
		}(g)
	}
	wg.Wait()

	if got := c.len(); got > 16 {
		t.Errorf("len = %d exceeds capacity 16", got)
	}
	for i := range c.segs {
		if n := len(*c.segs[i].items.Load()); n > c.segCap {
			t.Errorf("segment %d holds %d entries, cap share is %d", i, n, c.segCap)
		}
	}
	// Quiesced sweep: every surviving entry is uncorrupted (hit-path
	// scribbles above must have landed on copies) and every stale probe
	// removed its entry.
	for i := 0; i < keys; i++ {
		k := keyOf(i)
		if got := c.get(k, fresh); got != nil {
			if got.Utility != float64(i) || got.Assignment["act"].Vector[0] != 1 {
				t.Errorf("entry %s corrupted: %+v", k, got)
			}
			if c.get(k, stale) != nil {
				t.Errorf("stale probe of %s returned a result", k)
			}
			if c.get(k, fresh) != nil {
				t.Errorf("stale probe of %s did not remove the entry", k)
			}
		}
	}
	if v := counterValue(t, r, "qasom_plan_cache_evictions_total"); v == 0 {
		t.Error("no evictions counted despite 3x-capacity key churn")
	}
	if v := counterValue(t, r, "qasom_plan_cache_epoch_invalidations_total"); v == 0 {
		t.Error("no epoch invalidations counted despite stale probes")
	}
	hits := counterValue(t, r, "qasom_plan_cache_hits_total")
	if segSum := counterValue(t, r, "qasom_plan_cache_segment_hits_total"); segSum > hits {
		t.Errorf("per-segment hits %g exceed total hits %g", segSum, hits)
	}
}

func TestPlanCacheDisabledIsNil(t *testing.T) {
	c := newPlanCache(-1, 0, obs.NewRegistry())
	if c != nil {
		t.Fatal("negative capacity should disable the cache")
	}
	// The nil cache is a safe no-op (the façade calls it unconditionally
	// for the entries gauge).
	if c.len() != 0 {
		t.Error("nil cache len should be 0")
	}
	if c.get("k", nil) != nil {
		t.Error("nil cache get should miss")
	}
	c.put("k", nil, fakeResult("s", 1)) // must not panic
}

// TestDifferentialPlanCacheChurnRaced interleaves registry churn with
// concurrent composes and, for every cache hit it can pin to a stable
// epoch window, DeepEquals the cached Result against a fresh
// recomputation: a hit must be bit-identical to running the selection
// again at the same epoch. Run under -race this also exercises the
// cache's locking against Publish/Withdraw.
func TestDifferentialPlanCacheChurnRaced(t *testing.T) {
	mw, err := New(Options{Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct{ prefix, capability string }{
		{"browse", "BrowseCatalog"}, {"order", "OrderItem"}, {"pay", "CardPayment"},
	} {
		for i := 0; i < 5; i++ {
			err := mw.Publish(Service{
				ID:         fmt.Sprintf("%s-%d", spec.prefix, i),
				Capability: spec.capability,
				QoS: map[string]float64{
					"responseTime": 40 + float64(5*i), "price": 5,
					"availability": 0.95, "reliability": 0.9, "throughput": 40,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	const doc = `<process name="churn-shopping" concept="Shopping">
	  <sequence>
	    <invoke activity="browse" concept="BrowseCatalog"/>
	    <invoke activity="order" concept="OrderItem"/>
	    <invoke activity="pay" concept="Payment"/>
	  </sequence>
	</process>`
	req := Request{
		Task:        doc,
		Constraints: []Constraint{{Property: "responseTime", Bound: 500}},
	}
	tk, err := mw.resolveTask(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The verifier must key and recompute exactly as compose() does.
	coreReq := &core.Request{
		Task:        tk,
		Properties:  mw.props,
		Constraints: []qos.Constraint{{Property: "responseTime", Bound: 500}},
		Approach:    qos.Pessimistic,
	}
	key := planCacheKey(tk, coreReq)

	stop := make(chan struct{})
	var stopOnce sync.Once
	var churnWG sync.WaitGroup
	// One churner on capabilities the task touches (forces epoch
	// invalidations), one on an unrelated capability (must NOT
	// invalidate, keeping the hit rate up).
	churn := func(capability, prefix string) {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("%s-%d", prefix, i%4)
			err := mw.Publish(Service{
				ID: id, Capability: capability,
				QoS: map[string]float64{
					"responseTime": 30 + float64(i%10), "price": 4,
					"availability": 0.96, "reliability": 0.92, "throughput": 45,
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			mw.Withdraw(id)
		}
	}
	churnWG.Add(2)
	go churn("OrderItem", "churn-rel")
	go churn("LabAnalysis", "churn-unrel")

	const verifiers = 4
	const iterations = 150
	var verifyWG sync.WaitGroup
	var compared, hits int64
	var statMu sync.Mutex
	errc := make(chan error, verifiers)
	verify := func(stopChurnAt int) {
		defer verifyWG.Done()
		ctx := context.Background()
		localCompared, localHits := int64(0), int64(0)
		for i := 0; i < iterations; i++ {
			if i == stopChurnAt {
				// Second half runs churn-free so hits (and therefore
				// comparisons) are guaranteed, not just likely.
				stopOnce.Do(func() { close(stop) })
			}
			snap := mw.planEpochs(nil, tk)
			cached := mw.plans.get(key, snap)
			if cached == nil {
				// Miss: a normal compose repopulates the entry.
				if _, err := mw.Compose(req); err != nil {
					errc <- err
					return
				}
				continue
			}
			localHits++
			// Fresh recomputation through the same pipeline the cache
			// bypassed.
			candidates := make(map[string][]registry.Candidate, tk.Size())
			ok := true
			for _, a := range tk.Activities() {
				cands := mw.reg.CandidatesForActivity(a, mw.props)
				if len(cands) == 0 {
					ok = false
					break
				}
				candidates[a.ID] = cands
			}
			if !ok {
				continue
			}
			fresh, err := mw.selector.SelectContext(ctx, coreReq, candidates)
			if err != nil {
				errc <- err
				return
			}
			if !equalEpochs(snap, mw.planEpochs(nil, tk)) {
				// The registry churned somewhere inside the hit→recompute
				// window: the comparison is not pinned to one epoch, skip.
				continue
			}
			localCompared++
			if !reflect.DeepEqual(cached.Assignment, fresh.Assignment) {
				errc <- fmt.Errorf("cached assignment diverged: %v vs %v", cached.Assignment, fresh.Assignment)
				return
			}
			if cached.Utility != fresh.Utility ||
				cached.Feasible != fresh.Feasible ||
				cached.Violation != fresh.Violation ||
				!reflect.DeepEqual(cached.Aggregated, fresh.Aggregated) ||
				!reflect.DeepEqual(cached.Alternates, fresh.Alternates) {
				errc <- fmt.Errorf("cached result diverged from fresh recomputation at the same epoch")
				return
			}
		}
		statMu.Lock()
		compared += localCompared
		hits += localHits
		statMu.Unlock()
	}
	for g := 0; g < verifiers; g++ {
		verifyWG.Add(1)
		go verify(iterations / 2)
	}
	verifyWG.Wait()
	stopOnce.Do(func() { close(stop) })
	churnWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if hits == 0 || compared == 0 {
		t.Fatalf("differential never pinned a hit (hits=%d compared=%d)", hits, compared)
	}
	t.Logf("plan-cache differential: %d hits, %d compared at pinned epochs", hits, compared)
}
