// Black-box tests for serving mode through the public API: repeated
// Compose calls hit the selection-plan cache, registry churn on touched
// capabilities invalidates, unrelated churn does not, and a cached
// middleware stays composition-for-composition identical to an uncached
// one through a deterministic churn sequence.
package qasom_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"qasom"
	"qasom/internal/obs"
)

// metricValue reads a label-less metric (counter or func gauge) from a
// hub's registry snapshot; ok is false when it is not registered.
func metricValue(hub *obs.Hub, name string) (float64, bool) {
	for _, m := range hub.Metrics.Snapshot() {
		if m.Name == name {
			if len(m.Series) == 0 {
				return 0, true
			}
			return m.Series[0].Value, true
		}
	}
	return 0, false
}

// compositionView flattens the externally observable selection outcome
// for equality checks.
type compositionView struct {
	Bindings   map[string]string
	Alternates map[string][]string
	Aggregated map[string]float64
	Utility    float64
	Feasible   bool
}

func viewOf(c *qasom.Composition) compositionView {
	v := compositionView{
		Bindings:   c.Bindings(),
		Alternates: make(map[string][]string),
		Aggregated: c.AggregatedQoS(),
		Utility:    c.Utility(),
		Feasible:   c.Feasible(),
	}
	for act := range v.Bindings {
		v.Alternates[act] = c.Alternates(act)
	}
	return v
}

func TestComposeCacheHitBitIdentical(t *testing.T) {
	hub := obs.NewHub()
	mw, err := qasom.New(qasom.Options{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)
	req := qasom.Request{
		Task: behaviourA,
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 200},
			{Property: "availability", Bound: 0.8},
		},
		Weights: map[string]float64{"responseTime": 2, "price": 1},
	}
	first, err := mw.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.SelectionStats().CacheHit {
		t.Fatal("first compose cannot be a cache hit")
	}
	second, err := mw.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.SelectionStats().CacheHit {
		t.Fatal("identical repeat compose should be a cache hit")
	}
	if !reflect.DeepEqual(viewOf(first), viewOf(second)) {
		t.Errorf("cached composition differs from original:\n%+v\nvs\n%+v",
			viewOf(first), viewOf(second))
	}
	// The replayed stats describe the original run's work profile.
	if second.SelectionStats().Evaluations != first.SelectionStats().Evaluations {
		t.Errorf("cached stats should carry the original work counters")
	}
	for name, want := range map[string]float64{
		"qasom_plan_cache_hits_total":   1,
		"qasom_plan_cache_misses_total": 1,
		"qasom_plan_cache_entries":      1,
	} {
		got, ok := metricValue(hub, name)
		if !ok {
			t.Errorf("metric %s not registered", name)
		} else if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	// A cached composition is live: it executes independently of the
	// original (deep copy, no shared adaptation state).
	if _, err := mw.Execute(context.Background(), second); err != nil {
		t.Fatalf("executing a cached composition: %v", err)
	}
}

func TestComposeCacheEpochInvalidation(t *testing.T) {
	hub := obs.NewHub()
	mw, err := qasom.New(qasom.Options{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)
	req := qasom.Request{Task: behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 300}}}
	mustCompose := func() *qasom.Composition {
		t.Helper()
		c, err := mw.Compose(req)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	mustCompose() // populate
	if !mustCompose().SelectionStats().CacheHit {
		t.Fatal("warm repeat should hit")
	}

	// Publishing a service for a capability the task touches (CardPayment
	// is plugin-matched by the "pay" activity's Payment concept) bumps
	// that capability's epoch: the entry must be invalidated.
	if err := mw.Publish(qasom.Service{ID: "pay-new", Capability: "CardPayment", QoS: stdQoS(20)}); err != nil {
		t.Fatal(err)
	}
	if mustCompose().SelectionStats().CacheHit {
		t.Error("publish of a touched capability must invalidate the cached plan")
	}
	if v, _ := metricValue(hub, "qasom_plan_cache_epoch_invalidations_total"); v != 1 {
		t.Errorf("invalidations = %g, want 1", v)
	}
	if !mustCompose().SelectionStats().CacheHit {
		t.Fatal("recomputed plan should be cached again")
	}

	// Withdrawing it invalidates again.
	if !mw.Withdraw("pay-new") {
		t.Fatal("withdraw failed")
	}
	if mustCompose().SelectionStats().CacheHit {
		t.Error("withdraw of a touched capability must invalidate the cached plan")
	}

	// Churn on an unrelated capability (MedicalService branch) must NOT
	// invalidate: its epochs are outside the task's capability closure.
	mustCompose() // re-populate after the withdraw invalidation
	if err := mw.Publish(qasom.Service{ID: "lab-1", Capability: "LabAnalysis", QoS: stdQoS(80)}); err != nil {
		t.Fatal(err)
	}
	mw.Withdraw("lab-1")
	if !mustCompose().SelectionStats().CacheHit {
		t.Error("unrelated-capability churn should not invalidate the cached plan")
	}
}

func TestComposeCacheDisabledAndDistributedBypass(t *testing.T) {
	mw, err := qasom.New(qasom.Options{Obs: obs.NewHub(), SelectionCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)
	req := qasom.Request{Task: behaviourA}
	for i := 0; i < 2; i++ {
		comp, err := mw.Compose(req)
		if err != nil {
			t.Fatal(err)
		}
		if comp.SelectionStats().CacheHit {
			t.Fatal("disabled cache must never hit")
		}
	}

	// Distributed selections bypass the cache even when it is enabled.
	mw2, err := qasom.New(qasom.Options{Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw2)
	for i := 0; i < 2; i++ {
		comp, err := mw2.Compose(qasom.Request{Task: behaviourA, Distributed: true})
		if err != nil {
			t.Fatal(err)
		}
		if comp.SelectionStats().CacheHit {
			t.Fatal("distributed compose must never be served from the cache")
		}
	}
}

func TestComposeCacheKeyDistinguishesRequests(t *testing.T) {
	mw, err := qasom.New(qasom.Options{Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)
	variants := []qasom.Request{
		{Task: behaviourA},
		{Task: behaviourA, Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 200}}},
		{Task: behaviourA, Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 250}}},
		{Task: behaviourA, Weights: map[string]float64{"price": 3}},
		{Task: behaviourA, Approach: "optimistic"},
		{Task: behaviourB},
	}
	for i, req := range variants {
		comp, err := mw.Compose(req)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if comp.SelectionStats().CacheHit {
			t.Errorf("variant %d: first compose of a distinct request must miss", i)
		}
	}
	for i, req := range variants {
		comp, err := mw.Compose(req)
		if err != nil {
			t.Fatalf("variant %d repeat: %v", i, err)
		}
		if !comp.SelectionStats().CacheHit {
			t.Errorf("variant %d: repeat compose should hit", i)
		}
	}
}

// TestDifferentialPlanCacheChurn drives a cached and an uncached
// middleware through the same deterministic publish/withdraw sequence
// and requires composition-for-composition equality: the cache may only
// change how a result is produced, never what it is.
func TestDifferentialPlanCacheChurn(t *testing.T) {
	newSide := func(cacheSize int) *qasom.Middleware {
		mw, err := qasom.New(qasom.Options{Obs: obs.NewHub(), SelectionCacheSize: cacheSize})
		if err != nil {
			t.Fatal(err)
		}
		seedMall(t, mw)
		return mw
	}
	cached := newSide(0)    // default cache
	uncached := newSide(-1) // always recomputes
	both := []*qasom.Middleware{cached, uncached}

	req := qasom.Request{Task: behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 300}}}
	hits := 0
	step := func(label string, churn func(mw *qasom.Middleware)) {
		t.Helper()
		for _, mw := range both {
			churn(mw)
		}
		ca, err := cached.Compose(req)
		if err != nil {
			t.Fatalf("%s: cached compose: %v", label, err)
		}
		cb, err := uncached.Compose(req)
		if err != nil {
			t.Fatalf("%s: uncached compose: %v", label, err)
		}
		if !reflect.DeepEqual(viewOf(ca), viewOf(cb)) {
			t.Fatalf("%s: cached middleware diverged from uncached:\n%+v\nvs\n%+v",
				label, viewOf(ca), viewOf(cb))
		}
		if ca.SelectionStats().CacheHit {
			hits++
		}
	}

	step("warmup", func(mw *qasom.Middleware) {})
	for round := 0; round < 3; round++ {
		id := fmt.Sprintf("order-extra-%d", round)
		step("idle", func(mw *qasom.Middleware) {})
		step("publish related", func(mw *qasom.Middleware) {
			if err := mw.Publish(qasom.Service{
				ID: id, Capability: "OrderItem", QoS: stdQoS(25 + float64(round)),
			}); err != nil {
				t.Fatal(err)
			}
		})
		step("publish unrelated", func(mw *qasom.Middleware) {
			if err := mw.Publish(qasom.Service{
				ID: id + "-lab", Capability: "LabAnalysis", QoS: stdQoS(90),
			}); err != nil {
				t.Fatal(err)
			}
		})
		step("withdraw related", func(mw *qasom.Middleware) {
			if !mw.Withdraw(id) {
				t.Fatalf("withdraw %s failed", id)
			}
		})
		step("withdraw unrelated", func(mw *qasom.Middleware) {
			mw.Withdraw(id + "-lab")
		})
	}
	// Idle and unrelated-churn steps must have been served from the cache
	// (1 warmup-follow-up idle + 1 unrelated publish + 1 unrelated
	// withdraw per round, give or take the first idle's population).
	if hits < 6 {
		t.Errorf("cached side hit only %d times; caching is not engaging", hits)
	}
}

// A finished context must surface ctx.Err() even when the request would
// be served straight from a warm plan cache — the fast path is not
// allowed to outrun cancellation.
func TestComposeCacheHitRespectsCancelledContext(t *testing.T) {
	mw, err := qasom.New(qasom.Options{Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)
	req := qasom.Request{Task: behaviourA}
	if _, err := mw.Compose(req); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mw.ComposeContext(ctx, req); err == nil {
		t.Fatal("cancelled context served from the plan cache without error")
	}
	// The cache entry stays valid for live callers.
	c, err := mw.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if !c.SelectionStats().CacheHit {
		t.Error("warm entry lost after the cancelled probe")
	}
}
