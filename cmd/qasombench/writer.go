package main

import (
	"os"
	"path/filepath"

	"qasom/internal/bench"
)

// resultWriter persists experiment tables as CSV, one file per
// experiment, flushed to disk the moment the experiment finishes: a
// sweep interrupted by SIGINT (or any ctx cancellation) keeps every
// completed table — and the partial table of the experiment that was
// cancelled mid-run — instead of losing the whole session.
type resultWriter struct {
	// dir is the output directory; empty disables writing.
	dir string
}

// Write flushes one experiment's table to <dir>/<id>.csv.
func (w *resultWriter) Write(id string, table *bench.Table) error {
	if w.dir == "" {
		return nil
	}
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(w.dir, id+".csv"), []byte(table.CSV()), 0o644)
}
