package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qasom/internal/bench"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(context.Background(), args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListInventory(t *testing.T) {
	code, stdout, _ := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("code %d", code)
	}
	for _, want := range []string{"vi5a", "vi13", "adapt", "qosagg", "baselines"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("inventory missing %q", want)
		}
	}
}

func TestNoArgs(t *testing.T) {
	code, _, stderr := runBench(t)
	if code != 2 || !strings.Contains(stderr, "nothing to do") {
		t.Errorf("code %d, stderr %q", code, stderr)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := runBench(t, "-exp", "nope")
	if code != 1 || !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("code %d, stderr %q", code, stderr)
	}
}

func TestRunOneWithCSV(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runBench(t, "-exp", "qosagg", "-quick", "-v", "-csv", dir)
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "Table IV.1") || !strings.Contains(stdout, "expected:") {
		t.Errorf("stdout = %q", stdout)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "qosagg.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "kind,") {
		t.Errorf("csv header = %q", string(csv)[:20])
	}
}

func TestMetricsDumpToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	code, _, stderr := runBench(t, "-exp", "adapt", "-quick", "-metrics", path)
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	dump, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	// The adaptation experiment drives the executor under benchCtx, so
	// the process-wide registry must hold its counters.
	for _, want := range []string{
		"# TYPE qasom_exec_invocations_total counter",
		"qasom_exec_invocations_total ",
	} {
		if !strings.Contains(string(dump), want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestMetricsDumpToStdout(t *testing.T) {
	code, stdout, stderr := runBench(t, "-exp", "qosagg", "-quick", "-metrics", "-")
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "### telemetry registry") {
		t.Errorf("stdout missing registry header: %q", stdout)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runBench(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
}

func TestResultWriter(t *testing.T) {
	table := bench.NewTable("T", "a", "b")
	table.AddRow(1, 2)

	// Disabled writer is a no-op.
	if err := (&resultWriter{}).Write("x", table); err != nil {
		t.Fatalf("disabled writer: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "nested") // created on demand
	w := &resultWriter{dir: dir}
	if err := w.Write("x", table); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if string(csv) != "a,b\n1,2\n" {
		t.Errorf("csv = %q", csv)
	}
}

// TestInterruptFlushesPartialResults runs the serving experiment under
// an already-cancelled context: the closed loop must drain immediately,
// the partial table must still be written to the CSV directory, and the
// process must exit with the conventional SIGINT code.
func TestInterruptFlushesPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	code := run(ctx, []string{"-exp", "serving", "-quick", "-csv", dir}, &out, &errBuf)
	if code != 130 {
		t.Fatalf("code %d, want 130 (stderr %q)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "partial results flushed") {
		t.Errorf("stderr = %q", errBuf.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "serving.csv"))
	if err != nil {
		t.Fatalf("partial csv not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "clients,") {
		t.Errorf("csv header = %q", string(csv))
	}
	if !strings.Contains(out.String(), "interrupted at") {
		t.Errorf("partial-run note missing from table output:\n%s", out.String())
	}
}
