package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListInventory(t *testing.T) {
	code, stdout, _ := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("code %d", code)
	}
	for _, want := range []string{"vi5a", "vi13", "adapt", "qosagg", "baselines"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("inventory missing %q", want)
		}
	}
}

func TestNoArgs(t *testing.T) {
	code, _, stderr := runBench(t)
	if code != 2 || !strings.Contains(stderr, "nothing to do") {
		t.Errorf("code %d, stderr %q", code, stderr)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := runBench(t, "-exp", "nope")
	if code != 1 || !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("code %d, stderr %q", code, stderr)
	}
}

func TestRunOneWithCSV(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runBench(t, "-exp", "qosagg", "-quick", "-v", "-csv", dir)
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "Table IV.1") || !strings.Contains(stdout, "expected:") {
		t.Errorf("stdout = %q", stdout)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "qosagg.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "kind,") {
		t.Errorf("csv header = %q", string(csv)[:20])
	}
}

func TestMetricsDumpToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	code, _, stderr := runBench(t, "-exp", "adapt", "-quick", "-metrics", path)
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	dump, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	// The adaptation experiment drives the executor under benchCtx, so
	// the process-wide registry must hold its counters.
	for _, want := range []string{
		"# TYPE qasom_exec_invocations_total counter",
		"qasom_exec_invocations_total ",
	} {
		if !strings.Contains(string(dump), want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestMetricsDumpToStdout(t *testing.T) {
	code, stdout, stderr := runBench(t, "-exp", "qosagg", "-quick", "-metrics", "-")
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "### telemetry registry") {
		t.Errorf("stdout missing registry header: %q", stdout)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runBench(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
}
