// Command qasombench regenerates the evaluation artefacts of the paper:
// every table and figure has a harness experiment (see DESIGN.md for the
// index). Results print as aligned text tables and can be exported as
// CSV files for plotting.
//
// Usage:
//
//	qasombench -list                 # show the experiment inventory
//	qasombench -exp vi5a             # run one experiment
//	qasombench -exp shards           # registry scale-out sweep (DESIGN.md §4g)
//	qasombench -all                  # run everything (slow)
//	qasombench -all -quick           # smoke-test sweep sizes
//	qasombench -exp vi6a -csv out/   # also write out/vi6a.csv
//	qasombench -exp vi5a -metrics -  # dump the telemetry registry after the run
//
// -metrics writes the process-wide metrics registry (Prometheus text
// format: compose/execute counters and latency histograms, QASSA phase
// splits, monitor and adaptation counters) to the given file, or to
// standard output with "-", after every experiment has run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qasom/internal/bench"
	"qasom/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qasombench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		exp     = fs.String("exp", "", "comma-separated experiment IDs to run")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "use reduced sweep sizes")
		seed    = fs.Int64("seed", 1, "workload seed")
		reps    = fs.Int("reps", 0, "repetitions per measured point (0 = default)")
		csvDir  = fs.String("csv", "", "directory to write <id>.csv files into")
		metrics = fs.String("metrics", "", "file to dump the metrics registry into after the run (Prometheus text; \"-\" for stdout)")
		verbose = fs.Bool("v", false, "print expected shapes alongside results")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintf(stdout, "%-20s %-28s %s\n", "ID", "PAPER", "TITLE")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-20s %-28s %s\n", e.ID, e.Paper, e.Title)
		}
		return 0
	}

	var ids []string
	switch {
	case *all:
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(stderr, "nothing to do: pass -list, -all or -exp <id> (see -h)")
		return 2
	}

	// Results flush to disk as each experiment completes (and experiments
	// that honour ctx return their partial table on SIGINT), so
	// interrupting a long sweep keeps everything measured so far.
	cfg := bench.Config{Quick: *quick, Seed: *seed, Repetitions: *reps, Ctx: ctx}
	writer := &resultWriter{dir: *csvDir}
	failed := 0
	interrupted := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "### %s — %s\n", e.Paper, e.Title)
		if *verbose {
			fmt.Fprintf(stdout, "expected: %s\n", e.Expected)
		}
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Fprint(stdout, table.String())
		fmt.Fprintf(stdout, "(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if err := writer.Write(id, table); err != nil {
			fmt.Fprintf(stderr, "write %s: %v\n", id, err)
			return 1
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}
	if interrupted {
		fmt.Fprintln(stderr, "interrupted: partial results flushed")
	}
	if *metrics != "" {
		if err := dumpMetrics(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "metrics: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	if interrupted {
		return 130
	}
	return 0
}

// dumpMetrics writes the process-wide telemetry registry — which every
// middleware instance the experiments created reported into — in
// Prometheus text format, stamped with the build identity so archived
// dumps stay attributable to the binary that produced them.
func dumpMetrics(path string, stdout io.Writer) error {
	reg := obs.Default().Metrics
	obs.RegisterBuildInfo(reg)
	if path == "-" {
		fmt.Fprintln(stdout, "### telemetry registry")
		return reg.WritePrometheus(stdout)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
