// Command qasombench regenerates the evaluation artefacts of the paper:
// every table and figure has a harness experiment (see DESIGN.md for the
// index). Results print as aligned text tables and can be exported as
// CSV files for plotting.
//
// Usage:
//
//	qasombench -list                 # show the experiment inventory
//	qasombench -exp vi5a             # run one experiment
//	qasombench -all                  # run everything (slow)
//	qasombench -all -quick           # smoke-test sweep sizes
//	qasombench -exp vi6a -csv out/   # also write out/vi6a.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"qasom/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qasombench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		exp     = fs.String("exp", "", "comma-separated experiment IDs to run")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "use reduced sweep sizes")
		seed    = fs.Int64("seed", 1, "workload seed")
		reps    = fs.Int("reps", 0, "repetitions per measured point (0 = default)")
		csvDir  = fs.String("csv", "", "directory to write <id>.csv files into")
		verbose = fs.Bool("v", false, "print expected shapes alongside results")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintf(stdout, "%-20s %-28s %s\n", "ID", "PAPER", "TITLE")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-20s %-28s %s\n", e.ID, e.Paper, e.Title)
		}
		return 0
	}

	var ids []string
	switch {
	case *all:
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(stderr, "nothing to do: pass -list, -all or -exp <id> (see -h)")
		return 2
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Repetitions: *reps}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "### %s — %s\n", e.Paper, e.Title)
		if *verbose {
			fmt.Fprintf(stdout, "expected: %s\n", e.Expected)
		}
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Fprint(stdout, table.String())
		fmt.Fprintf(stdout, "(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(stderr, "csv dir: %v\n", err)
				return 1
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(stderr, "write %s: %v\n", path, err)
				return 1
			}
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
