// Command qasom is a demo CLI for the QASOM middleware: it boots a
// simulated pervasive environment (a commercial centre with shopping,
// payment and media services), then either runs a scripted demo of the
// full select→execute→adapt loop or composes a user-supplied
// abstract-BPEL task against the environment.
//
// Usage:
//
//	qasom demo                       # scripted end-to-end demo
//	qasom services                   # list the simulated environment
//	qasom compose -task file.bpel [-rt 400] [-price 30] [-distributed]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"qasom"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	mw, err := bootEnvironment(42)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	switch args[0] {
	case "demo":
		return demo(mw, stdout, stderr)
	case "services":
		return listServices(mw, stdout)
	case "compose":
		return compose(mw, args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, `usage: qasom <command>
  demo        run the scripted select → execute → adapt demo
  services    list the simulated environment's services
  compose     compose a task: qasom compose -task file.bpel [-rt N] [-price N] [-distributed]`)
}

// bootEnvironment publishes a deterministic commercial-centre
// environment.
func bootEnvironment(seed int64) (*qasom.Middleware, error) {
	mw, err := qasom.New(qasom.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []struct {
		prefix, capability string
		count              int
	}{
		{"catalog", "BrowseCatalog", 3},
		{"search", "SearchItem", 3},
		{"bookshop", "BookSale", 6},
		{"cdshop", "CDSale", 4},
		{"dvdshop", "DVDSale", 4},
		{"electro", "ElectronicsSale", 4},
		{"kiosk", "Shopping", 3},
		{"cashdesk", "CardPayment", 4},
		{"mpay", "MobilePayment", 3},
		{"notify", "Notification", 2},
	}
	for _, k := range kinds {
		for i := 0; i < k.count; i++ {
			err := mw.Publish(qasom.Service{
				ID:         fmt.Sprintf("%s-%d", k.prefix, i),
				Capability: k.capability,
				QoS: map[string]float64{
					"responseTime": 30 + rng.Float64()*150,
					"price":        1 + rng.Float64()*12,
					"availability": 0.85 + rng.Float64()*0.14,
					"reliability":  0.85 + rng.Float64()*0.14,
					"throughput":   20 + rng.Float64()*60,
				},
				Noise: 0.05,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return mw, nil
}

func listServices(mw *qasom.Middleware, stdout io.Writer) int {
	fmt.Fprintf(stdout, "simulated environment: %d services, properties %v\n",
		mw.ServiceCount(), mw.Properties())
	return 0
}

const demoTask = `<process name="demo-shopping" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <flow>
      <invoke activity="book" concept="BookSale"/>
      <invoke activity="cd" concept="CDSale"/>
    </flow>
    <invoke activity="pay" concept="Payment"/>
  </sequence>
</process>`

func demo(mw *qasom.Middleware, stdout, stderr io.Writer) int {
	fmt.Fprintln(stdout, "== QASOM demo: shopping in a simulated commercial centre ==")
	comp, err := mw.Compose(qasom.Request{
		Task: demoTask,
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 400},
			{Property: "price", Bound: 30},
		},
		Weights: map[string]float64{"price": 2, "responseTime": 1},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printComposition(stdout, comp)

	victim := comp.Bindings()["book"]
	fmt.Fprintf(stdout, "\ninjecting failure: %s goes down\n", victim)
	mw.SetDown(victim)

	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "execution: completed=%v invocations=%d failures=%d substitutions=%d behaviour-switches=%d\n",
		report.Completed, report.Invocations, report.Failures, report.Substitutions, report.BehaviourSwitches)
	fmt.Fprintf(stdout, "book is now served by %s\n", comp.Bindings()["book"])
	return 0
}

func compose(mw *qasom.Middleware, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compose", flag.ContinueOnError)
	fs.SetOutput(stderr)
	taskPath := fs.String("task", "", "abstract-BPEL task file")
	rt := fs.Float64("rt", 0, "responseTime bound (0 = none)")
	price := fs.Float64("price", 0, "price bound (0 = none)")
	distributed := fs.Bool("distributed", false, "run the local phase distributed")
	execute := fs.Bool("exec", false, "execute the composition after selection")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *taskPath == "" {
		fmt.Fprintln(stderr, "compose: -task is required")
		return 2
	}
	doc, err := os.ReadFile(*taskPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	req := qasom.Request{Task: string(doc), Distributed: *distributed}
	if *rt > 0 {
		req.Constraints = append(req.Constraints, qasom.Constraint{Property: "responseTime", Bound: *rt})
	}
	if *price > 0 {
		req.Constraints = append(req.Constraints, qasom.Constraint{Property: "price", Bound: *price})
	}
	comp, err := mw.Compose(req)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printComposition(stdout, comp)
	if *execute {
		report, err := mw.Execute(context.Background(), comp)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "execution: completed=%v substitutions=%d in %v\n",
			report.Completed, report.Substitutions, report.Duration)
	}
	return 0
}

func printComposition(stdout io.Writer, comp *qasom.Composition) {
	fmt.Fprintf(stdout, "feasible=%v utility=%.3f behaviour=%s\n", comp.Feasible(), comp.Utility(), comp.Behaviour())
	bindings := comp.Bindings()
	acts := make([]string, 0, len(bindings))
	for a := range bindings {
		acts = append(acts, a)
	}
	sort.Strings(acts)
	for _, a := range acts {
		fmt.Fprintf(stdout, "  %-8s -> %-16s alternates=%v\n", a, bindings[a], comp.Alternates(a))
	}
	agg := comp.AggregatedQoS()
	fmt.Fprintf(stdout, "aggregated: rt=%.0fms price=%.2f avail=%.3f rel=%.3f tput=%.0f\n",
		agg["responseTime"], agg["price"], agg["availability"], agg["reliability"], agg["throughput"])
}
