package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("code %d, stderr %q", code, stderr)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := runCLI(t, "frobnicate")
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("code %d, stderr %q", code, stderr)
	}
}

func TestServicesCommand(t *testing.T) {
	code, stdout, _ := runCLI(t, "services")
	if code != 0 {
		t.Fatalf("code %d", code)
	}
	if !strings.Contains(stdout, "36 services") {
		t.Errorf("stdout = %q", stdout)
	}
}

func TestDemoCommand(t *testing.T) {
	code, stdout, stderr := runCLI(t, "demo")
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"feasible=true", "injecting failure", "completed=true", "substitutions=1"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("demo output missing %q:\n%s", want, stdout)
		}
	}
}

func TestComposeCommand(t *testing.T) {
	dir := t.TempDir()
	taskFile := filepath.Join(dir, "task.bpel")
	doc := `<process name="cli-task" concept="Shopping">
	  <sequence>
	    <invoke activity="browse" concept="BrowseCatalog"/>
	    <invoke activity="buy" concept="BookSale"/>
	  </sequence>
	</process>`
	if err := os.WriteFile(taskFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "compose", "-task", taskFile, "-rt", "500", "-exec")
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"feasible=true", "browse", "buy", "completed=true"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("compose output missing %q:\n%s", want, stdout)
		}
	}
	// Distributed flag path.
	code, stdout, _ = runCLI(t, "compose", "-task", taskFile, "-distributed")
	if code != 0 || !strings.Contains(stdout, "feasible=") {
		t.Errorf("distributed compose failed: code %d\n%s", code, stdout)
	}
}

func TestComposeErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "compose"); code != 2 {
		t.Errorf("missing -task should exit 2, got %d", code)
	}
	if code, _, _ := runCLI(t, "compose", "-task", "/nonexistent.bpel"); code != 1 {
		t.Errorf("unreadable task should exit 1, got %d", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bpel")
	if err := os.WriteFile(bad, []byte("<nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "compose", "-task", bad); code != 1 {
		t.Error("malformed task should exit 1")
	}
}
