// Command qasomnode runs a standalone QASSA coordinator device: it hosts
// the candidate services of one or more activities (loaded from a JSON
// catalog) and serves the local selection phase over TCP, so a requester
// running the distributed selector (see core.TCPClient) can compose
// against a fleet of nodes — the ad hoc deployment of Fig. IV.4.
//
// Usage:
//
//	qasomnode -listen 127.0.0.1:9001 -catalog services.json [-latency 2ms] [-debug-addr 127.0.0.1:8080]
//
// With -debug-addr the node serves its telemetry over HTTP: /metrics
// (Prometheus text format, e.g. qasom_device_localselect_total),
// /healthz, /debug/spans, /debug/requests and /debug/pprof. Remote
// LocalSelect spans adopt the requester's trace ID from the wire, so a
// node's /debug/spans stitches into the requester's trace. The -slo
// flags attach a burn-rate engine: /healthz degrades to 503 when the
// fast-burn window exceeds its threshold.
//
// Catalog format (one entry per service):
//
//	[
//	  {"activity": "book", "id": "bookshop-1", "capability": "BookSale",
//	   "qos": {"responseTime": 80, "price": 6, "availability": 0.95,
//	           "reliability": 0.9, "throughput": 40}}
//	]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/randx"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/semantics"
)

// catalogEntry is one service in the JSON catalog.
type catalogEntry struct {
	Activity   string             `json:"activity"`
	ID         string             `json:"id"`
	Name       string             `json:"name"`
	Capability string             `json:"capability"`
	QoS        map[string]float64 `json:"qos"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "TCP address to serve LocalSelect on")
		catalog     = flag.String("catalog", "", "JSON catalog of hosted services (required)")
		name        = flag.String("name", "qasomnode", "device name (diagnostics)")
		latency     = flag.Duration("latency", 0, "simulated wireless round-trip added per request")
		debugAddr   = flag.String("debug-addr", "", "HTTP address for /metrics, /healthz, /debug/spans and /debug/pprof (empty: disabled)")
		idleTimeout = flag.Duration("idle-timeout", core.DefaultIdleTimeout, "per-connection read/write deadline (<=0: no deadline)")
		faultDrop   = flag.Float64("fault-drop", 0, "fault injection: probability of dropping a request without replying (the client sees a truncated exchange)")
		faultStall  = flag.Duration("fault-stall", 0, "fault injection: extra delay before every reply")
		faultSeed   = flag.Int64("fault-seed", 1, "fault injection: seed for the drop draws")
		sloTarget   = flag.Float64("slo-availability", 0, "SLO availability target in (0,1) for served LocalSelects (0: SLO engine disabled)")
		sloLatency  = flag.Duration("slo-latency", 50*time.Millisecond, "SLO per-request latency objective (with -slo-availability)")
	)
	flag.Parse()
	if *catalog == "" {
		fmt.Fprintln(os.Stderr, "qasomnode: -catalog is required")
		return 2
	}
	doc, err := os.ReadFile(*catalog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var entries []catalogEntry
	if err := json.Unmarshal(doc, &entries); err != nil {
		fmt.Fprintf(os.Stderr, "qasomnode: bad catalog: %v\n", err)
		return 1
	}
	dev, count, err := buildDevice(*name, *latency, entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hub := obs.Default()
	obs.RegisterBuildInfo(hub.Metrics)
	if *sloTarget > 0 {
		hub.SLO = obs.NewSLOEngine(obs.SLOConfig{
			Name:             "localselect",
			Availability:     *sloTarget,
			LatencyObjective: *sloLatency,
		}, hub.Metrics)
	}
	// The hub rides the serve context, so every LocalSelect handled by
	// the TCP server reports spans and counters into it.
	ctx = obs.WithHub(ctx, hub)
	if *debugAddr != "" {
		dbgAddr, stopDebug, err := obs.ServeDebug(ctx, *debugAddr, hub)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer stopDebug()
		fmt.Printf("qasomnode: debug endpoints on http://%s (/metrics /healthz /debug/spans /debug/pprof)\n", dbgAddr)
	}
	var sel core.LocalSelector = dev
	if *faultDrop > 0 || *faultStall > 0 {
		sel = &faultySelector{
			inner: dev,
			drop:  *faultDrop,
			stall: *faultStall,
			rng:   randx.New(*faultSeed),
		}
		fmt.Printf("qasomnode: fault injection enabled (drop=%.2f stall=%s seed=%d)\n",
			*faultDrop, *faultStall, *faultSeed)
	}
	if hub.SLO != nil {
		sel = &sloSelector{inner: sel, slo: hub.SLO}
		fmt.Printf("qasomnode: SLO engine enabled (availability=%.4f latency=%s)\n",
			*sloTarget, *sloLatency)
	}
	idle := *idleTimeout
	if idle <= 0 {
		idle = -1 // ServeTCPOptions: negative disables the deadline
	}
	addr, stop, err := core.ServeTCPOptions(ctx, *listen, sel, core.ServeOptions{IdleTimeout: idle})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stop()
	fmt.Printf("qasomnode %q serving %d services for activities %v on %s\n",
		*name, count, dev.Activities(), addr)
	<-ctx.Done()
	fmt.Println("qasomnode: shutting down")
	return 0
}

// faultySelector wraps the device's local phase with server-side fault
// injection: a drop makes the TCP server sever the connection without a
// reply (core.ErrDropExchange), so a remote requester exercises its
// retry/fallback path exactly as against a crashing coordinator; a stall
// delays the reply.
type faultySelector struct {
	inner core.LocalSelector
	drop  float64
	stall time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func (f *faultySelector) LocalSelect(ctx context.Context, req core.LocalRequest) (*core.LocalResult, error) {
	f.mu.Lock()
	dropped := f.drop > 0 && f.rng.Float64() < f.drop
	f.mu.Unlock()
	if f.stall > 0 {
		if !resilience.Sleep(ctx, f.stall) {
			return nil, resilience.CauseErr(ctx)
		}
	}
	if dropped {
		return nil, core.ErrDropExchange
	}
	return f.inner.LocalSelect(ctx, req)
}

// sloSelector feeds every served LocalSelect into the node's SLO
// engine, so /healthz degrades when the error or latency budget burns
// too fast.
type sloSelector struct {
	inner core.LocalSelector
	slo   *obs.SLOEngine
}

func (s *sloSelector) LocalSelect(ctx context.Context, req core.LocalRequest) (*core.LocalResult, error) {
	start := time.Now()
	res, err := s.inner.LocalSelect(ctx, req)
	s.slo.Observe(time.Since(start), err)
	return res, err
}

// buildDevice converts catalog entries into a hosted DeviceNode. The
// standard property set names are accepted in qos keys, as are ontology
// concepts/aliases.
func buildDevice(name string, latency time.Duration, entries []catalogEntry) (*core.DeviceNode, int, error) {
	ps := qos.StandardSet()
	onto := semantics.PervasiveWithScenarios()
	dev := core.NewDeviceNode(name, latency)
	byActivity := make(map[string][]registry.Candidate)
	for i, e := range entries {
		if e.Activity == "" || e.ID == "" || e.Capability == "" {
			return nil, 0, fmt.Errorf("qasomnode: catalog entry %d needs activity, id and capability", i)
		}
		offers := make([]registry.QoSOffer, 0, len(e.QoS))
		for key, value := range e.QoS {
			concept := semantics.ConceptID(key)
			if j, ok := ps.Index(key); ok {
				concept = ps.At(j).Concept
			}
			offers = append(offers, registry.QoSOffer{Property: concept, Value: value})
		}
		desc := registry.Description{
			ID:      registry.ServiceID(e.ID),
			Name:    e.Name,
			Concept: semantics.ConceptID(e.Capability),
			Offers:  offers,
		}
		vec, err := desc.VectorFor(ps, onto)
		if err != nil {
			return nil, 0, fmt.Errorf("qasomnode: catalog entry %d (%s): %w", i, e.ID, err)
		}
		byActivity[e.Activity] = append(byActivity[e.Activity], registry.Candidate{
			Service: desc, Vector: vec, Match: semantics.MatchExact,
		})
	}
	for act, cands := range byActivity {
		dev.Host(act, cands)
	}
	return dev, len(entries), nil
}
