// Command qasomnode runs a standalone QASSA coordinator device: it hosts
// the candidate services of one or more activities (loaded from a JSON
// catalog) and serves the local selection phase over TCP, so a requester
// running the distributed selector (see core.TCPClient) can compose
// against a fleet of nodes — the ad hoc deployment of Fig. IV.4.
//
// Usage:
//
//	qasomnode -listen 127.0.0.1:9001 -catalog services.json [-latency 2ms] [-debug-addr 127.0.0.1:8080]
//
// With -debug-addr the node serves its telemetry over HTTP: /metrics
// (Prometheus text format, e.g. qasom_device_localselect_total),
// /healthz, /debug/spans and /debug/pprof.
//
// Catalog format (one entry per service):
//
//	[
//	  {"activity": "book", "id": "bookshop-1", "capability": "BookSale",
//	   "qos": {"responseTime": 80, "price": 6, "availability": 0.95,
//	           "reliability": 0.9, "throughput": 40}}
//	]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

// catalogEntry is one service in the JSON catalog.
type catalogEntry struct {
	Activity   string             `json:"activity"`
	ID         string             `json:"id"`
	Name       string             `json:"name"`
	Capability string             `json:"capability"`
	QoS        map[string]float64 `json:"qos"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP address to serve LocalSelect on")
		catalog   = flag.String("catalog", "", "JSON catalog of hosted services (required)")
		name      = flag.String("name", "qasomnode", "device name (diagnostics)")
		latency   = flag.Duration("latency", 0, "simulated wireless round-trip added per request")
		debugAddr = flag.String("debug-addr", "", "HTTP address for /metrics, /healthz, /debug/spans and /debug/pprof (empty: disabled)")
	)
	flag.Parse()
	if *catalog == "" {
		fmt.Fprintln(os.Stderr, "qasomnode: -catalog is required")
		return 2
	}
	doc, err := os.ReadFile(*catalog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var entries []catalogEntry
	if err := json.Unmarshal(doc, &entries); err != nil {
		fmt.Fprintf(os.Stderr, "qasomnode: bad catalog: %v\n", err)
		return 1
	}
	dev, count, err := buildDevice(*name, *latency, entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hub := obs.Default()
	// The hub rides the serve context, so every LocalSelect handled by
	// the TCP server reports spans and counters into it.
	ctx = obs.WithHub(ctx, hub)
	if *debugAddr != "" {
		dbgAddr, stopDebug, err := obs.ServeDebug(ctx, *debugAddr, hub)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer stopDebug()
		fmt.Printf("qasomnode: debug endpoints on http://%s (/metrics /healthz /debug/spans /debug/pprof)\n", dbgAddr)
	}
	addr, stop, err := core.ServeTCP(ctx, *listen, dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stop()
	fmt.Printf("qasomnode %q serving %d services for activities %v on %s\n",
		*name, count, dev.Activities(), addr)
	<-ctx.Done()
	fmt.Println("qasomnode: shutting down")
	return 0
}

// buildDevice converts catalog entries into a hosted DeviceNode. The
// standard property set names are accepted in qos keys, as are ontology
// concepts/aliases.
func buildDevice(name string, latency time.Duration, entries []catalogEntry) (*core.DeviceNode, int, error) {
	ps := qos.StandardSet()
	onto := semantics.PervasiveWithScenarios()
	dev := core.NewDeviceNode(name, latency)
	byActivity := make(map[string][]registry.Candidate)
	for i, e := range entries {
		if e.Activity == "" || e.ID == "" || e.Capability == "" {
			return nil, 0, fmt.Errorf("qasomnode: catalog entry %d needs activity, id and capability", i)
		}
		offers := make([]registry.QoSOffer, 0, len(e.QoS))
		for key, value := range e.QoS {
			concept := semantics.ConceptID(key)
			if j, ok := ps.Index(key); ok {
				concept = ps.At(j).Concept
			}
			offers = append(offers, registry.QoSOffer{Property: concept, Value: value})
		}
		desc := registry.Description{
			ID:      registry.ServiceID(e.ID),
			Name:    e.Name,
			Concept: semantics.ConceptID(e.Capability),
			Offers:  offers,
		}
		vec, err := desc.VectorFor(ps, onto)
		if err != nil {
			return nil, 0, fmt.Errorf("qasomnode: catalog entry %d (%s): %w", i, e.ID, err)
		}
		byActivity[e.Activity] = append(byActivity[e.Activity], registry.Candidate{
			Service: desc, Vector: vec, Match: semantics.MatchExact,
		})
	}
	for act, cands := range byActivity {
		dev.Host(act, cands)
	}
	return dev, len(entries), nil
}
