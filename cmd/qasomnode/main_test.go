package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/qos"
)

func entries() []catalogEntry {
	return []catalogEntry{
		{Activity: "book", ID: "shop-1", Capability: "BookSale",
			QoS: map[string]float64{"responseTime": 80, "price": 6, "availability": 0.95, "reliability": 0.9, "throughput": 40}},
		{Activity: "book", ID: "shop-2", Capability: "BookSale",
			QoS: map[string]float64{"responseTime": 40, "price": 9, "availability": 0.97, "reliability": 0.92, "throughput": 50}},
		{Activity: "pay", ID: "pay-1", Capability: "CardPayment",
			QoS: map[string]float64{"Delay": 30, "Fee": 1, "Uptime": 0.99, "SuccessRate": 0.95, "Rate": 60}},
	}
}

func TestBuildDevice(t *testing.T) {
	dev, count, err := buildDevice("n1", 0, entries())
	if err != nil {
		t.Fatalf("buildDevice: %v", err)
	}
	if count != 3 {
		t.Errorf("count = %d", count)
	}
	acts := dev.Activities()
	if len(acts) != 2 {
		t.Errorf("activities = %v", acts)
	}
	// The device can actually serve a local selection, including the
	// alias-vocabulary entry.
	lr, err := dev.LocalSelect(context.Background(), core.LocalRequest{
		ActivityID: "pay",
		Properties: qos.StandardSet().Properties(),
		K:          2,
	})
	if err != nil {
		t.Fatalf("LocalSelect: %v", err)
	}
	if len(lr.Ranked) != 1 || lr.Ranked[0].Vector[0] != 30 {
		t.Errorf("alias vocabulary not resolved: %+v", lr.Ranked)
	}
}

func TestBuildDeviceValidation(t *testing.T) {
	bad := entries()
	bad[0].Activity = ""
	if _, _, err := buildDevice("n", 0, bad); err == nil {
		t.Error("entry without activity should fail")
	}
	incomplete := []catalogEntry{{Activity: "a", ID: "x", Capability: "BookSale",
		QoS: map[string]float64{"responseTime": 10}}}
	if _, _, err := buildDevice("n", 0, incomplete); err == nil {
		t.Error("unresolvable offers should fail")
	}
}

func TestNodeServesDistributedSelection(t *testing.T) {
	dev, _, err := buildDevice("n1", 0, entries())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	addr, stop, err := core.ServeTCP(ctx, "127.0.0.1:0", dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client := &core.TCPClient{Addr: addr}
	lr, err := client.LocalSelect(ctx, core.LocalRequest{
		ActivityID: "book",
		Properties: qos.StandardSet().Properties(),
		K:          2,
	})
	if err != nil {
		t.Fatalf("remote LocalSelect: %v", err)
	}
	if len(lr.Ranked) != 2 {
		t.Errorf("ranked = %d, want 2", len(lr.Ranked))
	}
}

// TestDebugEndpointsObserveServedSelections exercises the -debug-addr
// wiring end to end: the hub rides the serve context, so a LocalSelect
// handled over TCP must show up on the node's /metrics scrape.
func TestDebugEndpointsObserveServedSelections(t *testing.T) {
	dev, _, err := buildDevice("n1", 0, entries())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hub := obs.NewHub()
	ctx = obs.WithHub(ctx, hub)
	dbgAddr, stopDebug, err := obs.ServeDebug(ctx, "127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer stopDebug()
	addr, stop, err := core.ServeTCP(ctx, "127.0.0.1:0", dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client := &core.TCPClient{Addr: addr}
	if _, err := client.LocalSelect(ctx, core.LocalRequest{
		ActivityID: "book",
		Properties: qos.StandardSet().Properties(),
		K:          2,
	}); err != nil {
		t.Fatalf("remote LocalSelect: %v", err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", dbgAddr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "qasom_device_localselect_total 1") {
		t.Errorf("scrape missing served-selection counter:\n%s", body)
	}
}
