#!/bin/sh
# ci.sh — the repository's verification gate.
#
#   ./ci.sh          # vet + build + tests + race detector
#   ./ci.sh quick    # vet + build + tests (skip the slower -race pass)
#
# The -race pass matters here: the composition pipeline is concurrent
# (parallel QASSA local phase, indexed registry under RWMutex, memoized
# ontology reasoning) and the test suite includes churn/cancellation
# tests written to catch data races.
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

if [ "${1:-}" != "quick" ]; then
	echo "== go test -race ./..."
	go test -race ./...
fi

echo "ci: all checks passed"
