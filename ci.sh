#!/bin/sh
# ci.sh — the repository's verification gate.
#
#   ./ci.sh          # gofmt + vet + build + tests + race detector
#   ./ci.sh quick    # gofmt + vet + build + tests + race on the
#                    # telemetry packages only (skips the slow full pass)
#
# The -race pass matters here: the composition pipeline is concurrent
# (parallel QASSA local phase, indexed registry under RWMutex, memoized
# ontology reasoning, lock-free metrics/span instrumentation) and the
# test suite includes churn/cancellation/scrape tests written to catch
# data races.
set -eu

cd "$(dirname "$0")"

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

if [ "${1:-}" = "quick" ]; then
	# Quick still races the telemetry layer: its lock-free counters,
	# span ring, flight-recorder ring and SLO bucket ring are the code
	# most likely to regress under concurrency, and these packages
	# race-test in a couple of seconds.
	echo "== go test -race ./internal/obs (quick)"
	go test -race ./internal/obs
	# The evaluator differential suite is the correctness gate for the
	# incremental evaluation engine and the selection-plan cache
	# (bit-identical results vs the naive/uncached reference) — cheap
	# enough to race on every quick pass. The root package carries the
	# plan-cache churn differentials (including the multi-tenant shared
	# store), the registry package the sharded-store epoch/candidate
	# differentials under raced churn. The core and baseline packages
	# also carry the dependency-repair and Pareto-front differentials
	# (QASSA vs the exhaustive reference front, both eval kernels).
	echo "== go test -race -run TestDifferential . ./internal/core ./internal/baseline ./internal/registry (quick)"
	go test -race -run 'TestDifferential' . ./internal/core ./internal/baseline ./internal/registry
	# The failover suite races the substitution index: lock-free
	# lookups against watch/health churn in subidx, and the adapt
	# package's concurrent-substitution exactly-once, differential
	# decision-identity and churn-during-failover tests.
	echo "== go test -race failover suite (quick)"
	go test -race ./internal/subidx
	go test -race -run 'TestDifferential|TestIndex|TestConcurrent|TestExecutor|TestStaged|TestResult' ./internal/adapt
	# The multicore hot-path suite: raced RCU snapshot reads in the
	# registry (torn-publish check), raced per-segment eviction + epoch
	# invalidation in the sharded plan cache, and the mutex-profile
	# assertion that the warm read paths acquire zero locks.
	echo "== go test -race hot-path suite (quick)"
	go test -race -run 'TestRacedSnapshotReads' ./internal/registry
	go test -race -run 'TestPlanCacheShardedRaced|TestHotPathsAcquireNoMutexes' .
	# The distributed failure matrix exercises the resilience layer's
	# concurrency (hedged requests, breaker state, prompt cancellation);
	# -shuffle=on catches order-dependent breaker/fault state.
	echo "== go test -race -shuffle=on distributed failure matrix (quick)"
	go test -race -shuffle=on -run 'TestDistributed|TestServeTCP|TestExecute' ./internal/core ./internal/resilience
	# The benchmark regression gate: median of 3 short counting passes
	# against the committed BENCH_qassa.json, 15% threshold (see
	# scripts/benchcmp.sh for knobs).
	echo "== scripts/benchcmp.sh (quick)"
	sh scripts/benchcmp.sh
else
	echo "== go test -race ./..."
	go test -race ./...
	# Shuffled pass over the distributed failure matrix: breaker and
	# fault-injection state must not depend on test order.
	echo "== go test -race -shuffle=on distributed failure matrix"
	go test -race -shuffle=on -run 'TestDistributed|TestServeTCP|TestExecute' ./internal/core ./internal/resilience
fi

echo "ci: all checks passed"
