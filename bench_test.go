// Benchmarks mirroring the paper's evaluation artefacts, one per table
// and figure (see DESIGN.md §4 for the index). `go test -bench=.
// -benchmem` reports the raw per-operation costs; the richer sweeps with
// optimality measurements live in cmd/qasombench / internal/bench.
package qasom_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qasom"
	"qasom/internal/baseline"
	"qasom/internal/bench"
	"qasom/internal/bpel"
	"qasom/internal/core"
	"qasom/internal/graph"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/semantics"
	"qasom/internal/simenv"
	"qasom/internal/task"
	"qasom/internal/workload"
)

// benchInstance generates one selection problem.
func benchInstance(n, services, constraints int, shape workload.TaskShape,
	tight workload.Tightness, approach qos.Approach) (*core.Request, map[string][]registry.Candidate) {
	ps := qos.StandardSet()
	if constraints > ps.Len() {
		ps = qos.ExtendedSet()
	}
	g := workload.NewGenerator(1)
	laws := workload.DefaultLaws(ps)
	tk := g.Task("B", n, shape)
	cands := g.Candidates(tk, services, ps, laws)
	req := &core.Request{
		Task:        tk,
		Properties:  ps,
		Constraints: g.Constraints(tk, ps, laws, tight, constraints),
		Approach:    approach,
	}
	return req, cands
}

// BenchmarkAggregation covers Table IV.1: one full aggregation of a
// mixed-pattern task tree per iteration.
func BenchmarkAggregation(b *testing.B) {
	ps := qos.StandardSet()
	g := workload.NewGenerator(1)
	laws := workload.DefaultLaws(ps)
	tk := g.Task("Agg", 10, workload.ShapeMixed)
	assign := make(map[string]qos.Vector, tk.Size())
	for _, a := range tk.Activities() {
		assign[a.ID] = g.Vector(ps, laws)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := tk.AggregateQoS(ps, assign, qos.Pessimistic)
		if v[0] <= 0 {
			b.Fatal("degenerate aggregate")
		}
	}
}

// BenchmarkQASSA_Services covers Fig. VI.5(a).
func BenchmarkQASSA_Services(b *testing.B) {
	for _, services := range []int{10, 50, 100, 300} {
		b.Run(fmt.Sprintf("l=%d", services), func(b *testing.B) {
			req, cands := benchInstance(10, services, 3, workload.ShapeMixed,
				workload.AtMeanPlusSigma, qos.Pessimistic)
			sel := core.NewSelector(core.Options{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(req, cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQASSA_Constraints covers Fig. VI.5(b).
func BenchmarkQASSA_Constraints(b *testing.B) {
	for _, c := range []int{1, 3, 5, 8} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			req, cands := benchInstance(10, 50, c, workload.ShapeMixed,
				workload.AtMeanPlusSigma, qos.Pessimistic)
			sel := core.NewSelector(core.Options{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(req, cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQASSA_Aggregation covers Figs. VI.7/VI.8 (per-approach cost).
func BenchmarkQASSA_Aggregation(b *testing.B) {
	for _, approach := range qos.Approaches() {
		b.Run(approach.String(), func(b *testing.B) {
			req, cands := benchInstance(10, 50, 3, workload.ShapeChoiceHeavy,
				workload.AtMeanPlusSigma, approach)
			sel := core.NewSelector(core.Options{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(req, cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQASSA_Tightness covers Figs. VI.10/VI.11.
func BenchmarkQASSA_Tightness(b *testing.B) {
	for _, tight := range []workload.Tightness{workload.AtMean, workload.AtMeanPlusSigma} {
		b.Run(tight.String(), func(b *testing.B) {
			req, cands := benchInstance(10, 50, 3, workload.ShapeMixed, tight, qos.Pessimistic)
			sel := core.NewSelector(core.Options{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(req, cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQASSA_RepairHeavy pins the global constraints at the
// workload mean (the tight Fig. VI.10 setting), forcing the global
// phase through repair swaps — each one an aggregated-QoS probe. This is
// the evaluation-kernel stress test: selection cost is dominated by
// probe evaluations, not by clustering.
func BenchmarkQASSA_RepairHeavy(b *testing.B) {
	for _, services := range []int{100, 300} {
		for _, naive := range []bool{false, true} {
			mode := "incremental"
			if naive {
				mode = "naive"
			}
			b.Run(fmt.Sprintf("l=%d/eval=%s", services, mode), func(b *testing.B) {
				req, cands := benchInstance(10, services, 3, workload.ShapeMixed,
					workload.AtMean, qos.Pessimistic)
				sel := core.NewSelector(core.Options{NaiveEvaluation: naive})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sel.Select(req, cands); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEvalProbe isolates one global-phase probe — swap one
// activity's candidate, re-check the constraint violation — on a
// 10-activity mixed tree. The incremental engine re-folds only the
// swapped leaf's root path; the naive route re-aggregates the whole tree
// through a fresh assignment map, exactly as the global phase did before
// the engine existed.
func BenchmarkEvalProbe(b *testing.B) {
	req, cands := benchInstance(10, 50, 3, workload.ShapeMixed,
		workload.AtMean, qos.Pessimistic)
	eval, err := core.NewEvaluator(req, cands)
	if err != nil {
		b.Fatal(err)
	}
	acts := req.Task.Activities()

	b.Run("incremental", func(b *testing.B) {
		eng, err := core.NewEvalEngine(eval, cands)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := i % eng.Activities()
			eng.Assign(a, i%eng.PoolSize(a))
			if v := eng.Violation(); v < 0 {
				b.Fatal("negative violation")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		assign := make(core.Assignment, len(acts))
		for _, a := range acts {
			assign[a.ID] = cands[a.ID][0]
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := acts[i%len(acts)]
			assign[a.ID] = cands[a.ID][i%len(cands[a.ID])]
			if v := eval.Violation(assign); v < 0 {
				b.Fatal("negative violation")
			}
		}
	})
}

// BenchmarkParetoProbe isolates one vector probe — what a candidate
// swap would do to the whole aggregated QoS vector, not just the scalar
// violation — against the committed-swap scalar probe of
// BenchmarkEvalProbe. Both refold only the swapped leaf's root path;
// the probe budget is zero allocations (the caller owns the buffer).
func BenchmarkParetoProbe(b *testing.B) {
	req, cands := benchInstance(10, 50, 3, workload.ShapeMixed,
		workload.AtMean, qos.Pessimistic)
	eval, err := core.NewEvaluator(req, cands)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEvalEngine(eval, cands)
	if err != nil {
		b.Fatal(err)
	}
	buf := req.Properties.NewVector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := i % eng.Activities()
		buf = eng.ProbeVector(a, i%eng.PoolSize(a), buf)
		if buf[0] <= 0 {
			b.Fatal("degenerate probe vector")
		}
	}
}

// BenchmarkParetoSelect measures the Pareto-front selection mode in both
// regimes: exact enumeration on a small instance (pool product under the
// exhaustive bound) and the archive-guided sweep on a QASSA-sized one.
// The front-size metric documents how much of the cost is archive
// maintenance versus probing.
func BenchmarkParetoSelect(b *testing.B) {
	for _, mode := range []struct {
		name           string
		acts, services int
	}{
		{"regime=exhaustive", 5, 4},
		{"regime=sweep", 10, 50},
	} {
		b.Run(mode.name, func(b *testing.B) {
			req, cands := benchInstance(mode.acts, mode.services, 3,
				workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic)
			req.Objectives = []string{"responseTime", "price"}
			sel := core.NewSelector(core.Options{ParetoMode: true})
			b.ReportAllocs()
			b.ResetTimer()
			var frontSum int
			for i := 0; i < b.N; i++ {
				res, err := sel.Select(req, cands)
				if err != nil {
					b.Fatal(err)
				}
				frontSum += res.Stats.FrontSize
			}
			b.ReportMetric(float64(frontSum)/float64(b.N), "front-size")
		})
	}
}

// BenchmarkQASSA_Distributed covers Fig. VI.12 (in-process transport, no
// artificial link latency so the benchmark measures computation).
func BenchmarkQASSA_Distributed(b *testing.B) {
	req, cands := benchInstance(10, 50, 3, workload.ShapeMixed,
		workload.AtMeanPlusSigma, qos.Pessimistic)
	devices := make(map[string]core.LocalSelector, len(cands))
	for id, list := range cands {
		dev := core.NewDeviceNode("dev-"+id, 0)
		dev.Host(id, list)
		devices[id] = dev
	}
	sel := core.NewDistributedSelector(core.Options{}, devices)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedChurn measures availability-under-churn: 20% of
// the coordinator devices are failed (drop every exchange), every
// activity has two replicas, and the requester's registry view backs the
// degraded fallback. Each iteration must still return a selection —
// retries rescue activities with a live replica, fallback rescues the
// rest — so ns/op is the price of selecting through coordinator failure.
func BenchmarkDistributedChurn(b *testing.B) {
	req, cands := benchInstance(10, 50, 3, workload.ShapeMixed,
		workload.AtMeanPlusSigma, qos.Pessimistic)
	fi := simenv.NewFaultInjector(1)
	replicas := make(map[string][]core.Transport, len(cands))
	var peers []string
	for _, a := range req.Task.Activities() {
		primary := core.NewDeviceNode("primary-"+a.ID, 0)
		primary.Host(a.ID, cands[a.ID])
		secondary := core.NewDeviceNode("secondary-"+a.ID, 0)
		secondary.Host(a.ID, cands[a.ID])
		replicas[a.ID] = []core.Transport{
			fi.Wrap(&core.InProcessTransport{Name: primary.Name, Selector: primary}),
			fi.Wrap(&core.InProcessTransport{Name: secondary.Name, Selector: secondary}),
		}
		peers = append(peers, primary.Name, secondary.Name)
	}
	for i := 0; i < len(peers)/5; i++ { // 20% of the coordinators down
		fi.Set(peers[i], simenv.Fault{DropProb: 1})
	}
	sel := core.NewResilientDistributedSelector(core.Options{}, replicas, core.DistConfig{
		Policy: resilience.Policy{
			MaxAttempts: 3,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
		},
		Fallback: cands,
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sel.Select(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Assignment) != len(replicas) {
			b.Fatalf("incomplete selection under churn: %d of %d activities",
				len(res.Assignment), len(replicas))
		}
	}
}

// BenchmarkQASSA_LocalPhaseWorkers compares the sequential (1 worker)
// and parallel (GOMAXPROCS workers) centralized local phase on a large
// instance (20 activities × 500 candidates). Selections are identical
// for every worker count. The custom local-ns/op metric isolates the
// local phase from the (identical) global-phase cost included in ns/op.
func BenchmarkQASSA_LocalPhaseWorkers(b *testing.B) {
	req, cands := benchInstance(20, 500, 3, workload.ShapeMixed,
		workload.AtMeanPlusSigma, qos.Pessimistic)
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool, len(counts))
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sel := core.NewSelector(core.Options{Workers: workers})
			b.ReportAllocs()
			b.ResetTimer()
			var localNS int64
			for i := 0; i < b.N; i++ {
				res, err := sel.Select(req, cands)
				if err != nil {
					b.Fatal(err)
				}
				localNS += int64(res.Stats.LocalDuration)
			}
			b.ReportMetric(float64(localNS)/float64(b.N), "local-ns/op")
		})
	}
}

// BenchmarkQASSA_Telemetry compares the selection path without a hub in
// the context (every span/metric handle is a nil no-op) against the
// fully instrumented path (spans recorded, counters and histograms
// updated) — the overhead budget of the telemetry layer.
func BenchmarkQASSA_Telemetry(b *testing.B) {
	req, cands := benchInstance(10, 50, 3, workload.ShapeMixed,
		workload.AtMeanPlusSigma, qos.Pessimistic)
	sel := core.NewSelector(core.Options{})
	for _, mode := range []struct {
		name string
		ctx  context.Context
	}{
		{"off", context.Background()},
		{"on", obs.WithHub(context.Background(), obs.NewHub())},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.SelectContext(mode.ctx, req, cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegistryCandidates compares the capability-indexed candidate
// lookup against the full-scan path on a 5000-service registry spread
// over 50 capabilities (100 matching descriptions per lookup).
func BenchmarkRegistryCandidates(b *testing.B) {
	const services = 5000
	const capabilities = 50
	ps := qos.StandardSet()
	build := func(indexing bool) (*registry.Registry, []semantics.ConceptID) {
		onto := semantics.PervasiveWithScenarios()
		caps := make([]semantics.ConceptID, capabilities)
		for i := range caps {
			caps[i] = semantics.ConceptID(fmt.Sprintf("BenchCap%02d", i))
			if err := onto.AddConcept(caps[i], semantics.BookSale); err != nil {
				b.Fatal(err)
			}
		}
		r := registry.New(onto)
		r.SetIndexing(indexing)
		for i := 0; i < services; i++ {
			d := registry.Description{
				ID:      registry.ServiceID(fmt.Sprintf("s%04d", i)),
				Concept: caps[i%capabilities],
				Offers: []registry.QoSOffer{
					{Property: semantics.ResponseTime, Value: 40 + float64(i%100)},
					{Property: semantics.Price, Value: 5},
					{Property: semantics.Availability, Value: 0.95},
					{Property: semantics.Reliability, Value: 0.9},
					{Property: semantics.Throughput, Value: 40},
				},
			}
			if err := r.Publish(d); err != nil {
				b.Fatal(err)
			}
		}
		return r, caps
	}
	for _, mode := range []struct {
		name     string
		indexing bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			r, caps := build(mode.indexing)
			if got := r.Candidates(caps[0], ps); len(got) != services/capabilities {
				b.Fatalf("warm-up lookup returned %d candidates", len(got))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := r.Candidates(caps[i%capabilities], ps)
				if len(got) != services/capabilities {
					b.Fatalf("lookup returned %d candidates", len(got))
				}
			}
		})
	}
}

// BenchmarkExhaustiveBaseline shows the cost wall QASSA avoids
// (reference for Figs. VI.6/VI.8/VI.11; note the tiny instance).
func BenchmarkExhaustiveBaseline(b *testing.B) {
	req, cands := benchInstance(5, 10, 3, workload.ShapeMixed,
		workload.AtMeanPlusSigma, qos.Pessimistic)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Exhaustive(req, cands, baseline.ExhaustiveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyBaseline is the thesis's low-cost comparison point.
func BenchmarkGreedyBaseline(b *testing.B) {
	req, cands := benchInstance(10, 50, 3, workload.ShapeMixed,
		workload.AtMeanPlusSigma, qos.Pessimistic)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Greedy(req, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBPELToGraph covers Fig. VI.13.
func BenchmarkBPELToGraph(b *testing.B) {
	for _, n := range []int{10, 100, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := workload.NewGenerator(1)
			tk := g.Task("T", n, workload.ShapeMixed)
			doc, err := bpel.Marshal(tk)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parsed, err := bpel.Parse(doc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := graph.FromTask(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHomeomorphism covers the Chapter V §7 matcher cost.
func BenchmarkHomeomorphism(b *testing.B) {
	onto := semantics.Scenarios()
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pattern := lineGraph(b, n, semantics.ShoppingService)
			host := interleavedHost(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, found, err := graph.FindHomeomorphism(pattern, host, graph.MatchOptions{Ontology: onto})
				if err != nil || !found {
					b.Fatalf("match failed: %v %v", found, err)
				}
			}
		})
	}
}

func lineGraph(b *testing.B, n int, concept semantics.ConceptID) *graph.Graph {
	b.Helper()
	nodes := make([]*task.Node, n)
	for i := range nodes {
		nodes[i] = task.NewActivity(&task.Activity{ID: fmt.Sprintf("p%d", i), Concept: concept})
	}
	tk := &task.Task{Name: "p", Concept: "C", Root: task.Sequence(nodes...)}
	g, err := graph.FromTask(tk)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func interleavedHost(b *testing.B, n int) *graph.Graph {
	b.Helper()
	nodes := make([]*task.Node, 2*n)
	for i := range nodes {
		c := semantics.ShoppingService
		if i%2 == 1 {
			c = semantics.NotifyService
		}
		nodes[i] = task.NewActivity(&task.Activity{ID: fmt.Sprintf("h%d", i), Concept: c})
	}
	tk := &task.Task{Name: "h", Concept: "C", Root: task.Sequence(nodes...)}
	g, err := graph.FromTask(tk)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAdaptation measures one substitution-driven recovery through
// the public API (Ch. V end-to-end).
func BenchmarkAdaptation(b *testing.B) {
	mw := newBenchMall(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		comp, err := mw.Compose(qasom.Request{Task: benchTask})
		if err != nil {
			b.Fatal(err)
		}
		victim := comp.Bindings()["order"]
		mw.SetDown(victim)
		b.StartTimer()
		report, err := mw.Execute(context.Background(), comp)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Completed || report.Substitutions == 0 {
			b.Fatalf("recovery failed: %+v", report)
		}
		b.StopTimer()
		mw.SetUp(victim)
		b.StartTimer()
	}
}

const benchTask = `<process name="bench-shopping" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <invoke activity="order" concept="OrderItem"/>
    <invoke activity="pay" concept="Payment"/>
  </sequence>
</process>`

func newBenchMall(b *testing.B) *qasom.Middleware {
	b.Helper()
	mw, err := qasom.New()
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []struct{ prefix, capability string }{
		{"browse", "BrowseCatalog"}, {"order", "OrderItem"}, {"pay", "CardPayment"},
	} {
		for i := 0; i < 5; i++ {
			err := mw.Publish(qasom.Service{
				ID:         fmt.Sprintf("%s-%d", spec.prefix, i),
				Capability: spec.capability,
				QoS: map[string]float64{
					"responseTime": 40 + float64(5*i), "price": 5,
					"availability": 0.95, "reliability": 0.9, "throughput": 40,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return mw
}

// BenchmarkFailover measures one service-death recovery per iteration
// at ℓ=300 with 50-candidate alternate sets, 80% of them dead (60%
// withdrawn, 20% health-demoted — the prefix every failover must get
// past). ns/op is the whole steady-state round (kill the binding,
// substitute, redeploy); the sub-p50-us/sub-p99-us metrics isolate the
// Substitute call itself, reactive alternate scan vs index lookup.
func BenchmarkFailover(b *testing.B) {
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"reactive", false}, {"index", true}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			rig, err := bench.NewFailoverRig(bench.FailoverConfig{Indexed: mode.indexed})
			if err != nil {
				b.Fatal(err)
			}
			defer rig.Close()
			b.ReportAllocs()
			b.ResetTimer()
			res, err := rig.Rounds(b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(res.P50)/float64(time.Microsecond), "sub-p50-us")
			b.ReportMetric(float64(res.P99)/float64(time.Microsecond), "sub-p99-us")
		})
	}
}

// BenchmarkThroughput is the closed-loop serving benchmark: GOMAXPROCS
// concurrent clients compose the same task against one middleware with a
// warm selection-plan cache while the registry churns underneath (mostly
// unrelated capabilities, periodically one the task touches so epochs
// invalidate and a fresh selection runs). ns/op is the per-composition
// wall cost of the whole loop; the custom metrics report throughput,
// latency quantiles and the cache hit rate.
func BenchmarkThroughput(b *testing.B) {
	rig, err := bench.NewThroughputRig(bench.ThroughputConfig{
		Clients: runtime.GOMAXPROCS(0),
		Churn:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := rig.Warm(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := rig.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.OpsPerSec, "ops/sec")
	b.ReportMetric(float64(res.P50)/float64(time.Millisecond), "p50-ms")
	b.ReportMetric(float64(res.P99)/float64(time.Millisecond), "p99-ms")
	b.ReportMetric(res.HitRate*100, "hit%")
	b.ReportMetric(res.SLOAttainment*100, "slo%")
}

// BenchmarkOpenLoop is the open-loop serving benchmark: arrivals are
// scheduled from a clock at a fixed rate (10k/s, constant process, no
// churn) and every latency is measured from the scheduled arrival — the
// coordinated-omission-safe regime. ns/op is pinned near the arrival
// period by construction, so the gated signal is B/op and allocs/op
// (the per-arrival cost of the whole open-loop path); the custom
// metrics report goodput, shed arrivals and the tail quantiles.
func BenchmarkOpenLoop(b *testing.B) {
	rig, err := bench.NewOpenLoopRig(bench.OpenLoopConfig{
		Rate:    10000,
		Process: bench.OpenLoopConstant,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := rig.Warm(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := rig.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.Achieved, "arrv/sec")
	b.ReportMetric(float64(res.Dropped), "ol-drops")
	b.ReportMetric(float64(res.P50)/float64(time.Microsecond), "ol-p50-us")
	b.ReportMetric(float64(res.P99)/float64(time.Microsecond), "ol-p99-us")
	b.ReportMetric(float64(res.P999)/float64(time.Microsecond), "ol-p999-us")
}

// BenchmarkComposeFacade measures the full public-API composition path
// (registry resolution + QASSA).
func BenchmarkComposeFacade(b *testing.B) {
	mw := newBenchMall(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := mw.Compose(qasom.Request{
			Task:        benchTask,
			Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 300}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !comp.Feasible() {
			b.Fatal("should be feasible")
		}
	}
}

// regOpsRig caches fully-populated sharded stores across sub-benchmark
// invocations: Go re-enters each closure with a growing b.N, and the
// lookup/churn pair shares one population per (shards, size). Churn
// operations are publish-new/withdraw pairs, so a cached store's
// population is invariant between runs.
type regOpsRig struct {
	reg  *registry.Registry
	caps []semantics.ConceptID
}

var (
	regOpsMu   sync.Mutex
	regOpsRigs = map[[2]int]*regOpsRig{}
)

func registryOpsRig(b *testing.B, shards, services int) *regOpsRig {
	b.Helper()
	regOpsMu.Lock()
	defer regOpsMu.Unlock()
	key := [2]int{shards, services}
	if rig, ok := regOpsRigs[key]; ok {
		return rig
	}
	const perCap = 50 // candidates per capability, matching the paper's mall density
	onto := semantics.PervasiveWithScenarios()
	caps := make([]semantics.ConceptID, services/perCap)
	for i := range caps {
		caps[i] = semantics.ConceptID(fmt.Sprintf("ShardCap%06d", i))
		if err := onto.AddConcept(caps[i], semantics.BookSale); err != nil {
			b.Fatal(err)
		}
	}
	reg := registry.NewStore(onto, registry.StoreOptions{Shards: shards}).Tenant(registry.DefaultTenant)
	for i := 0; i < services; i++ {
		err := reg.Publish(registry.Description{
			ID:      registry.ServiceID(fmt.Sprintf("svc-%07d", i)),
			Concept: caps[i%len(caps)],
			Offers: []registry.QoSOffer{
				{Property: semantics.ResponseTime, Value: 40 + float64(i%100)},
				{Property: semantics.Price, Value: 5},
				{Property: semantics.Availability, Value: 0.95},
				{Property: semantics.Reliability, Value: 0.9},
				{Property: semantics.Throughput, Value: 40},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	rig := &regOpsRig{reg: reg, caps: caps}
	regOpsRigs[key] = rig
	return rig
}

// BenchmarkRegistryOps measures raw registry throughput across shard
// counts (the scale-out axis of DESIGN.md §4g): concurrent capability
// lookups and publish/withdraw churn against 100k- and 1M-service
// stores at 1, 4 and 16 shards. Rigs are built lazily inside each
// sub-benchmark so a -bench filter (the benchcmp gate takes only the
// n=100k sizes) never pays for the 1M populations. Shard-count scaling
// is a lock-contention experiment: on a single-core host the curves
// are flat by construction, and the recorded numbers say so honestly —
// see EXPERIMENTS.md for the discussion.
func BenchmarkRegistryOps(b *testing.B) {
	ps := qos.StandardSet()
	var churnSeq atomic.Int64
	for _, size := range []struct {
		label string
		n     int
	}{{"100k", 100_000}, {"1M", 1_000_000}} {
		for _, shards := range []int{1, 4, 16} {
			suffix := fmt.Sprintf("s=%d/n=%s", shards, size.label)
			b.Run("op=lookup/"+suffix, func(b *testing.B) {
				rig := registryOpsRig(b, shards, size.n)
				if got := rig.reg.Candidates(rig.caps[0], ps); len(got) == 0 {
					b.Fatal("warm-up lookup found no candidates")
				}
				b.ReportAllocs()
				b.SetParallelism(4)
				var next, empty atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := next.Add(1)
						if got := rig.reg.Candidates(rig.caps[int(i)%len(rig.caps)], ps); len(got) == 0 {
							empty.Add(1)
						}
					}
				})
				b.StopTimer()
				if empty.Load() != 0 {
					b.Fatalf("%d lookups found no candidates", empty.Load())
				}
			})
			b.Run("op=churn/"+suffix, func(b *testing.B) {
				rig := registryOpsRig(b, shards, size.n)
				b.ReportAllocs()
				b.SetParallelism(4)
				var failed atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := churnSeq.Add(1)
						id := registry.ServiceID(fmt.Sprintf("churn-%d", i))
						err := rig.reg.Publish(registry.Description{
							ID:      id,
							Concept: rig.caps[int(i)%len(rig.caps)],
							Offers: []registry.QoSOffer{
								{Property: semantics.ResponseTime, Value: 30},
								{Property: semantics.Price, Value: 4},
								{Property: semantics.Availability, Value: 0.96},
								{Property: semantics.Reliability, Value: 0.92},
								{Property: semantics.Throughput, Value: 45},
							},
						})
						if err != nil || !rig.reg.Withdraw(id) {
							failed.Add(1)
						}
					}
				})
				b.StopTimer()
				if failed.Load() != 0 {
					b.Fatalf("%d churn cycles failed", failed.Load())
				}
			})
		}
	}
}
