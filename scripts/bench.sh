#!/bin/sh
# bench.sh — run the evaluation-kernel benchmark suite and write the
# results to BENCH_qassa.json (machine-readable companion to the
# EXPERIMENTS.md narrative).
#
#   scripts/bench.sh                # one counted pass per benchmark
#   BENCH=<regex> scripts/bench.sh  # override the benchmark selection
#   OUT=<path> scripts/bench.sh    # override the output file
#
# Output schema: a JSON object keyed by benchmark name (GOMAXPROCS
# suffix stripped), each value holding ns_per_op, bytes_per_op,
# allocs_per_op (as reported by -benchmem) — the three numbers the
# acceptance criteria in ISSUE/PR discussions track. Benchmarks that
# report throughput metrics (BenchmarkThroughput's ops/sec, p50-ms,
# p99-ms custom metrics) get ops_per_sec/p50_ms/p99_ms fields too, and
# BenchmarkOpenLoop adds arrivals_per_sec plus coordinated-omission-safe
# ol_p50_us/ol_p99_us/ol_p999_us/ol_drops. The two serving benchmarks
# additionally run a GOMAXPROCS sweep (CPUS, default "1,2") whose
# entries are keyed <name>/g=<procs>, with runtime mutex/block
# contention profiles written to PROFDIR for pprof inspection.
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkFailover|BenchmarkQASSA_RepairHeavy|BenchmarkEvalProbe|BenchmarkParetoProbe|BenchmarkParetoSelect|BenchmarkQASSA_Services|BenchmarkExhaustiveBaseline|BenchmarkGreedyBaseline|BenchmarkDistributedChurn|BenchmarkThroughput|BenchmarkOpenLoop|BenchmarkRegistryOps}"
OUT="${OUT:-BENCH_qassa.json}"
CPUS="${CPUS:-1,2}"
PROFDIR="${PROFDIR:-bench-profiles}"

# The lock-free claim behind the serving numbers: warm plan-cache hits
# and registry candidate/epoch reads must acquire zero mutexes. Run the
# mutex-profile assertion first so a bench run certifies the claim
# alongside recording the numbers.
go test -run 'TestHotPathsAcquireNoMutexes' -count=1 .

raw=$(go test -run '^$' -bench "$BENCH" -benchmem .)
echo "$raw"

# GOMAXPROCS sweep over the serving benchmarks, with contention
# profiling on: the mutex/block profiles are the artifact that shows
# where (if anywhere) the hot path waits as cores are added.
mkdir -p "$PROFDIR"
sweep=$(go test -run '^$' -bench 'BenchmarkThroughput$|BenchmarkOpenLoop$' -benchmem \
	-cpu "$CPUS" -mutexprofile mutex.out -blockprofile block.out \
	-outputdir "$PROFDIR" -o "$PROFDIR/qasom.test" .)
echo "$sweep"

# The front-quality table (front size, hypervolume vs the exhaustive
# reference, select p50/p99) and the open-loop latency surface
# (arrival process × rate × GOMAXPROCS) come from the experiment
# harness — the numbers a -benchmem line cannot carry.
paretodir=$(mktemp -d)
trap 'rm -rf "$paretodir"' EXIT
go run ./cmd/qasombench -exp pareto -csv "$paretodir" >/dev/null
go run ./cmd/qasombench -exp openloop -csv "$paretodir" >/dev/null

{
	echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; ops = ""; p50 = ""; p99 = ""; sp50 = ""; sp99 = ""; fs = ""
    arrv = ""; old = ""; op50 = ""; op99 = ""; op999 = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "ops/sec")   ops = $(i - 1)
        if ($i == "p50-ms")    p50 = $(i - 1)
        if ($i == "p99-ms")    p99 = $(i - 1)
        if ($i == "sub-p50-us") sp50 = $(i - 1)
        if ($i == "sub-p99-us") sp99 = $(i - 1)
        if ($i == "front-size") fs = $(i - 1)
        if ($i == "arrv/sec")   arrv = $(i - 1)
        if ($i == "ol-drops")   old = $(i - 1)
        if ($i == "ol-p50-us")  op50 = $(i - 1)
        if ($i == "ol-p99-us")  op99 = $(i - 1)
        if ($i == "ol-p999-us") op999 = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, bytes, allocs
    if (ops != "") printf ", \"ops_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s", ops, p50, p99
    if (sp99 != "") printf ", \"sub_p50_us\": %s, \"sub_p99_us\": %s", sp50, sp99
    if (fs != "") printf ", \"front_size\": %s", fs
    if (arrv != "") printf ", \"arrivals_per_sec\": %s, \"ol_drops\": %s, \"ol_p50_us\": %s, \"ol_p99_us\": %s, \"ol_p999_us\": %s", arrv, old, op50, op99, op999
    printf "}"
}
END { }
'
	# The GOMAXPROCS sweep keeps the -N name suffix (as /g=N) so each
	# CPU count gets its own entry; no suffix means GOMAXPROCS=1.
	echo "$sweep" | awk '
/^Benchmark/ {
    name = $1
    g = "1"
    if (match(name, /-[0-9]+$/)) {
        g = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    ns = ""; bytes = ""; allocs = ""; ops = ""; p50 = ""; p99 = ""
    arrv = ""; old = ""; op50 = ""; op99 = ""; op999 = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")      ns = $(i - 1)
        if ($i == "B/op")       bytes = $(i - 1)
        if ($i == "allocs/op")  allocs = $(i - 1)
        if ($i == "ops/sec")    ops = $(i - 1)
        if ($i == "p50-ms")     p50 = $(i - 1)
        if ($i == "p99-ms")     p99 = $(i - 1)
        if ($i == "arrv/sec")   arrv = $(i - 1)
        if ($i == "ol-drops")   old = $(i - 1)
        if ($i == "ol-p50-us")  op50 = $(i - 1)
        if ($i == "ol-p99-us")  op99 = $(i - 1)
        if ($i == "ol-p999-us") op999 = $(i - 1)
    }
    if (ns == "") next
    printf ",\n  \"%s/g=%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, g, ns, bytes, allocs
    if (ops != "") printf ", \"ops_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s", ops, p50, p99
    if (arrv != "") printf ", \"arrivals_per_sec\": %s, \"ol_drops\": %s, \"ol_p50_us\": %s, \"ol_p99_us\": %s, \"ol_p999_us\": %s", arrv, old, op50, op99, op999
    printf "}"
}
'
	# One JSON entry per front-quality row, keyed by regime and
	# objective count (csv: regime,objectives,front_size,ref_size,
	# hv_ratio_pct,p50_ms,p99_ms).
	awk -F, 'NR > 1 {
    printf ",\n  \"ExpPareto/regime=%s/m=%s\": {\"front_size\": %s, \"ref_size\": %s, \"hv_ratio_pct\": %s, \"p50_ms\": %s, \"p99_ms\": %s}", $1, $2, $3, $4, $5, $6, $7
}' "$paretodir/pareto.csv"
	# One entry per open-loop cell, keyed by GOMAXPROCS, arrival process
	# and offered rate (csv: gomaxprocs,process,rate/s,arrivals,completed,
	# dropped,achieved/s,p50 (ms),p99 (ms),p999 (ms),hit rate).
	awk -F, 'NR > 1 {
    printf ",\n  \"ExpOpenLoop/g=%s/proc=%s/rate=%s\": {\"arrivals\": %s, \"completed\": %s, \"dropped\": %s, \"achieved_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s, \"p999_ms\": %s, \"hit_rate\": %s}", $1, $2, $3, $4, $5, $6, $7, $8, $9, $10, $11
}' "$paretodir/openloop.csv"
	printf '\n}\n'
} >"$OUT"

echo "bench: wrote $OUT"
