#!/bin/sh
# bench.sh — run the evaluation-kernel benchmark suite and write the
# results to BENCH_qassa.json (machine-readable companion to the
# EXPERIMENTS.md narrative).
#
#   scripts/bench.sh                # one counted pass per benchmark
#   BENCH=<regex> scripts/bench.sh  # override the benchmark selection
#   OUT=<path> scripts/bench.sh     # override the output file
#
# Output schema: a JSON object keyed by benchmark name, each value
# holding ns_per_op, bytes_per_op, allocs_per_op (as reported by
# -benchmem) — the three numbers the acceptance criteria in ISSUE/PR
# discussions track.
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkQASSA_RepairHeavy|BenchmarkEvalProbe|BenchmarkQASSA_Services|BenchmarkExhaustiveBaseline|BenchmarkGreedyBaseline|BenchmarkDistributedChurn}"
OUT="${OUT:-BENCH_qassa.json}"

raw=$(go test -run '^$' -bench "$BENCH" -benchmem .)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
}
END { print "\n}" }
' >"$OUT"

echo "bench: wrote $OUT"
