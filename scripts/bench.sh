#!/bin/sh
# bench.sh — run the evaluation-kernel benchmark suite and write the
# results to BENCH_qassa.json (machine-readable companion to the
# EXPERIMENTS.md narrative).
#
#   scripts/bench.sh                # one counted pass per benchmark
#   BENCH=<regex> scripts/bench.sh  # override the benchmark selection
#   OUT=<path> scripts/bench.sh    # override the output file
#
# Output schema: a JSON object keyed by benchmark name (GOMAXPROCS
# suffix stripped), each value holding ns_per_op, bytes_per_op,
# allocs_per_op (as reported by -benchmem) — the three numbers the
# acceptance criteria in ISSUE/PR discussions track. Benchmarks that
# report throughput metrics (BenchmarkThroughput's ops/sec, p50-ms,
# p99-ms custom metrics) get ops_per_sec/p50_ms/p99_ms fields too.
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkFailover|BenchmarkQASSA_RepairHeavy|BenchmarkEvalProbe|BenchmarkParetoProbe|BenchmarkParetoSelect|BenchmarkQASSA_Services|BenchmarkExhaustiveBaseline|BenchmarkGreedyBaseline|BenchmarkDistributedChurn|BenchmarkThroughput|BenchmarkRegistryOps}"
OUT="${OUT:-BENCH_qassa.json}"

raw=$(go test -run '^$' -bench "$BENCH" -benchmem .)
echo "$raw"

# The front-quality table (front size, hypervolume vs the exhaustive
# reference, select p50/p99) comes from the experiment harness — the
# numbers a -benchmem line cannot carry.
paretodir=$(mktemp -d)
trap 'rm -rf "$paretodir"' EXIT
go run ./cmd/qasombench -exp pareto -csv "$paretodir" >/dev/null

{
	echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; ops = ""; p50 = ""; p99 = ""; sp50 = ""; sp99 = ""; fs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "ops/sec")   ops = $(i - 1)
        if ($i == "p50-ms")    p50 = $(i - 1)
        if ($i == "p99-ms")    p99 = $(i - 1)
        if ($i == "sub-p50-us") sp50 = $(i - 1)
        if ($i == "sub-p99-us") sp99 = $(i - 1)
        if ($i == "front-size") fs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, bytes, allocs
    if (ops != "") printf ", \"ops_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s", ops, p50, p99
    if (sp99 != "") printf ", \"sub_p50_us\": %s, \"sub_p99_us\": %s", sp50, sp99
    if (fs != "") printf ", \"front_size\": %s", fs
    printf "}"
}
END { }
'
	# One JSON entry per front-quality row, keyed by regime and
	# objective count (csv: regime,objectives,front_size,ref_size,
	# hv_ratio_pct,p50_ms,p99_ms).
	awk -F, 'NR > 1 {
    printf ",\n  \"ExpPareto/regime=%s/m=%s\": {\"front_size\": %s, \"ref_size\": %s, \"hv_ratio_pct\": %s, \"p50_ms\": %s, \"p99_ms\": %s}", $1, $2, $3, $4, $5, $6, $7
}' "$paretodir/pareto.csv"
	printf '\n}\n'
} >"$OUT"

echo "bench: wrote $OUT"
