#!/bin/sh
# benchcmp.sh — benchmark regression gate.
#
# Runs the tier-1 benchmark suite RUNS times (default 3), takes the
# per-metric median, and compares ns_per_op / bytes_per_op /
# allocs_per_op against the committed baseline in BENCH_qassa.json. Any
# metric whose median exceeds its baseline by more than THRESHOLD
# (default 15%) fails the gate. The median over multiple runs is what
# keeps the gate non-flaky: a single noisy run cannot push a metric over
# the threshold on its own.
#
#   scripts/benchcmp.sh                      # full gate
#   RUNS=5 THRESHOLD=10 scripts/benchcmp.sh  # stricter
#   BENCH=<regex> scripts/benchcmp.sh        # subset of benchmarks
#   BENCHTIME=0.3s scripts/benchcmp.sh       # faster counting passes
#
# Only benchmarks present in BOTH the run and the baseline are compared
# (a new benchmark cannot fail the gate before its baseline is
# committed; ops_per_sec-style throughput fields are recorded but not
# gated — wall-clock throughput is too machine-dependent for a hard
# threshold).
set -eu

cd "$(dirname "$0")/.."

BASE="${BASE:-BENCH_qassa.json}"
# BenchmarkThroughput rides the gate as the tracing-overhead check: the
# serving hot path carries a span, a flight record and an SLO
# observation per composition, and the alloc/byte budgets keep that
# instrumentation honest. BenchmarkFailover gates the recovery path the
# same way: mode=index must stay a lock-free lookup (its ns/op and
# alloc budgets are the index-hit fast path plus the steady-state round
# overhead), mode=reactive keeps the fallback scan honest.
# BenchmarkParetoProbe gates the multi-objective vector probe (must stay
# O(path) and zero-alloc, within a few x of the scalar EvalProbe);
# BenchmarkParetoSelect gates both front-mode regimes end to end.
# BenchmarkOpenLoop gates the open-loop serving path (dispatcher + queue
# + workers + coordinated-omission-safe capture): its ns/op is per
# arrival at a fixed offered rate, so the alloc/byte budgets guard the
# harness overhead rather than the wall clock.
BENCH="${BENCH:-BenchmarkFailover|BenchmarkQASSA_RepairHeavy|BenchmarkEvalProbe|BenchmarkParetoProbe|BenchmarkParetoSelect|BenchmarkQASSA_Services|BenchmarkExhaustiveBaseline|BenchmarkGreedyBaseline|BenchmarkDistributedChurn|BenchmarkThroughput|BenchmarkOpenLoop}"
# The sharded-registry benchmarks are gated at the 100k population only:
# the 1M rigs exist for the recorded scale-out table, not for a quick
# regression pass (component-wise -bench regex, hence a separate run).
REGBENCH="${REGBENCH:-BenchmarkRegistryOps/op=(lookup|churn)/s=(1|4|16)/n=100k}"
RUNS="${RUNS:-3}"
THRESHOLD="${THRESHOLD:-15}"
BENCHTIME="${BENCHTIME:-0.5s}"

if [ ! -f "$BASE" ]; then
	echo "benchcmp: baseline $BASE missing" >&2
	exit 1
fi

raw=""
i=1
while [ "$i" -le "$RUNS" ]; do
	echo "benchcmp: counting pass $i/$RUNS" >&2
	raw="$raw
$(go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem .)
$(go test -run '^$' -bench "$REGBENCH" -benchtime "$BENCHTIME" -benchmem .)"
	i=$((i + 1))
done

# Feed the baseline and every run through one awk pass: collect the
# samples per benchmark/metric, compare medians against the baseline.
{
	echo "=== BASELINE ==="
	cat "$BASE"
	echo "=== RUNS ==="
	echo "$raw"
} | awk -v threshold="$THRESHOLD" '
function median(arr, n,    i, tmp, j, t) {
    for (i = 1; i <= n; i++) tmp[i] = arr[i]
    for (i = 2; i <= n; i++) {
        t = tmp[i]
        for (j = i - 1; j >= 1 && tmp[j] > t; j--) tmp[j + 1] = tmp[j]
        tmp[j + 1] = t
    }
    return tmp[int((n + 1) / 2)]
}
/^=== BASELINE ===$/ { section = "base"; next }
/^=== RUNS ===$/     { section = "runs"; next }
section == "base" && /"ns_per_op"/ {
    line = $0
    gsub(/[",:{}]/, " ", line)
    split(line, f, /[ \t]+/)
    name = f[2]
    for (i = 1; i in f; i++) {
        if (f[i] == "ns_per_op")     base_ns[name]     = f[i + 1]
        if (f[i] == "bytes_per_op")  base_bytes[name]  = f[i + 1]
        if (f[i] == "allocs_per_op") base_allocs[name] = f[i + 1]
    }
}
section == "runs" && /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     { n_ns[name]++;     ns[name, n_ns[name]] = $(i - 1) }
        if ($i == "B/op")      { n_b[name]++;      b[name, n_b[name]] = $(i - 1) }
        if ($i == "allocs/op") { n_a[name]++;      a[name, n_a[name]] = $(i - 1) }
    }
    seen[name] = 1
}
END {
    failed = 0
    compared = 0
    for (name in seen) {
        if (!(name in base_ns)) continue
        compared++
        # Re-pack the per-name samples into 1-based arrays for median().
        delete s
        for (i = 1; i <= n_ns[name]; i++) s[i] = ns[name, i]
        m_ns = median(s, n_ns[name])
        delete s
        for (i = 1; i <= n_b[name]; i++) s[i] = b[name, i]
        m_b = median(s, n_b[name])
        delete s
        for (i = 1; i <= n_a[name]; i++) s[i] = a[name, i]
        m_a = median(s, n_a[name])
        check(name, "ns/op",     m_ns, base_ns[name])
        check(name, "B/op",      m_b,  base_bytes[name])
        check(name, "allocs/op", m_a,  base_allocs[name])
    }
    if (compared == 0) {
        print "benchcmp: no benchmark overlapped the baseline — check BENCH regex" > "/dev/stderr"
        exit 1
    }
    printf "benchcmp: %d benchmarks compared, threshold %s%%\n", compared, threshold
    if (failed) exit 1
}
function check(name, metric, got, want,    limit) {
    if (want == 0) {
        # A zero baseline (e.g. the eval probe allocs) must stay zero.
        if (got > 0) {
            printf "FAIL %s %s: %g, baseline 0\n", name, metric, got
            failed = 1
        }
        return
    }
    limit = want * (1 + threshold / 100)
    if (got > limit) {
        printf "FAIL %s %s: %g exceeds baseline %g by more than %s%%\n", name, metric, got, want, threshold
        failed = 1
    } else {
        printf "ok   %-55s %-10s %12g (baseline %g)\n", name, metric, got, want
    }
}
'
echo "benchcmp: gate passed"
