module qasom

go 1.22
