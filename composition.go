package qasom

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"qasom/internal/adapt"
	"qasom/internal/bpel"
	"qasom/internal/core"
	"qasom/internal/exec"
	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/subidx"
	"qasom/internal/task"
)

// RegisterTaskClass stores a set of behaviourally different but
// functionally equivalent task definitions (abstract-BPEL documents) in
// the task-class repository; behavioural adaptation switches between
// them at run time. All behaviours must declare the same concept.
func (m *Middleware) RegisterTaskClass(name string, bpelDocs ...string) error {
	if len(bpelDocs) == 0 {
		return fmt.Errorf("qasom: task class %q needs at least one behaviour", name)
	}
	behaviours := make([]*task.Task, 0, len(bpelDocs))
	for i, doc := range bpelDocs {
		t, err := bpel.ParseString(doc)
		if err != nil {
			return fmt.Errorf("qasom: behaviour %d of class %q: %w", i, name, err)
		}
		behaviours = append(behaviours, t)
	}
	return m.repo.Register(&task.Class{
		Name:       name,
		Concept:    behaviours[0].Concept,
		Behaviours: behaviours,
	})
}

// TaskClasses returns the names of the registered task classes.
func (m *Middleware) TaskClasses() []string { return m.repo.Names() }

// Composition is a selected, executable service composition.
type Composition struct {
	mw      *Middleware
	runtime *adapt.Runtime
	manager *adapt.Manager
	// trackOnce defers substitution-index registration to the first
	// Execute: compose-only workloads (the serving hot path) never touch
	// the tracker.
	trackOnce sync.Once
}

// track registers the runtime with the substitution-index tracker and
// wires the behavioural-alternate stager. Idempotent; called at the top
// of Execute so a ranked replacement list is warm before the first
// invocation.
func (c *Composition) track() {
	if c.mw.subst == nil {
		return
	}
	c.trackOnce.Do(func() {
		manager, runtime := c.manager, c.runtime
		idx := c.mw.subst.Track(runtime)
		idx.SetStager(
			func() string { return manager.FrontierKey(runtime) },
			func() *subidx.StagedBehaviours { return manager.StageBehaviours(runtime) },
		)
		manager.Index = idx
	})
}

// Compose resolves the request: it parses the task, gathers candidate
// services from the registry (semantic matching) and runs QASSA under
// the global constraints. The composition is returned even when
// infeasible (best-effort, Feasible reports false). It is ComposeContext
// with a background context.
func (m *Middleware) Compose(req Request) (*Composition, error) {
	return m.ComposeContext(context.Background(), req)
}

// ComposeContext is Compose under a cancellable context. The context
// flows through the whole pipeline — candidate resolution, the parallel
// QASSA local phase and the level-wise global phase — and cancellation
// is honoured at per-activity lookup, level-iteration and repair-pass
// boundaries: the call returns ctx.Err() promptly and leaves the
// registry and the ontology unmutated. ComposeContext is safe to call
// from many goroutines against one Middleware, concurrently with
// Publish/Withdraw.
func (m *Middleware) ComposeContext(ctx context.Context, req Request) (*Composition, error) {
	ctx = obs.EnsureHub(ctx, m.obs)
	ctx, span := obs.StartSpan(ctx, "compose")
	defer span.End()
	m.met.composeTotal.Inc()
	m.met.tenantRequests.Inc()
	start := time.Now()
	rec := obs.RequestRecord{
		Kind:    "compose",
		TraceID: span.TraceID(),
		Tenant:  m.tenant,
		Start:   start,
	}
	comp, err := m.compose(ctx, req, &rec)
	rec.Duration = time.Since(start)
	m.met.composeSeconds.ObserveExemplar(rec.Duration.Seconds(), rec.TraceID)
	if err != nil {
		m.met.composeErrors.Inc()
		span.Annotate("error", err.Error())
		rec.Err = err.Error()
		m.obs.Flight.Record(rec)
		return nil, err
	}
	if !comp.Feasible() {
		m.met.composeInfeasible.Inc()
	}
	m.obs.Flight.Record(rec)
	return comp, nil
}

// compose is the body of ComposeContext, with the per-call telemetry
// (root span, outcome counters, end-to-end latency, flight record)
// applied around it. rec is filled in as the pipeline progresses so a
// failed call still documents how far it got.
func (m *Middleware) compose(ctx context.Context, req Request, rec *obs.RequestRecord) (*Composition, error) {
	resolveStart := time.Now()
	_, resolveSpan := obs.StartSpan(ctx, "compose.resolve")
	t, err := m.resolveTask(req.Task)
	resolveSpan.End()
	resolveDur := time.Since(resolveStart)
	rec.Phases.Resolve = resolveDur
	m.met.phaseSeconds.With("resolve").ObserveDuration(resolveDur)
	if err != nil {
		return nil, err
	}
	rec.Task = fmt.Sprintf("%016x", t.Fingerprint())
	if m.opts.ParetoMode && req.Distributed {
		return nil, fmt.Errorf("qasom: ParetoMode selections are centralized-only: per-coordinator fronts cannot be merged by the distributed protocol")
	}
	if !m.opts.ParetoMode && len(req.Objectives) > 0 {
		return nil, fmt.Errorf("qasom: Objectives require a middleware created with Options.ParetoMode")
	}
	coreReq := &core.Request{
		Task:       t,
		Properties: m.props,
		Objectives: req.Objectives,
	}
	for _, d := range req.Dependencies {
		cd, err := d.toCore()
		if err != nil {
			return nil, err
		}
		coreReq.Dependencies = append(coreReq.Dependencies, cd)
	}
	for _, c := range req.Constraints {
		coreReq.Constraints = append(coreReq.Constraints, qos.Constraint{Property: c.Property, Bound: c.Bound})
	}
	if req.Weights != nil {
		w := make(qos.Weights, m.props.Len())
		for name, v := range req.Weights {
			j, ok := m.props.Index(name)
			if !ok {
				return nil, fmt.Errorf("qasom: unknown weight property %q", name)
			}
			w[j] = v
		}
		coreReq.Weights = w
	}
	switch req.Approach {
	case "", "pessimistic":
		coreReq.Approach = qos.Pessimistic
	case "optimistic":
		coreReq.Approach = qos.Optimistic
	case "mean-value", "mean":
		coreReq.Approach = qos.MeanValue
	default:
		return nil, fmt.Errorf("qasom: unknown approach %q", req.Approach)
	}

	// Serving-mode fast path: selections are deterministic per seed, so a
	// completed plan can be replayed verbatim as long as no capability the
	// task touches has changed — which the registry epochs certify. The
	// snapshot is taken before candidate lookup (see planEpochs).
	// Dependency-carrying requests bypass the cache: rules are not part
	// of the plan key, so two requests differing only in rules would
	// collide. (Pareto mode never reaches here with a live cache — New
	// disables it.)
	cacheable := m.plans != nil && !req.Distributed && len(req.Dependencies) == 0
	var planKey string
	var planEpochSnap []uint64
	if cacheable {
		// A finished context must fail promptly even when the answer is
		// one cache probe away — callers rely on ctx.Err() surfacing.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		planKey = planCacheKey(t, coreReq)
		planEpochSnap = m.planEpochs(nil, t)
		res, outcome := m.plans.lookup(planKey, planEpochSnap)
		if res != nil {
			res.Stats.CacheHit = true
			rec.CacheHit = true
			fillSelectionRecord(rec, res)
			return m.wrapComposition(coreReq, res), nil
		}
		rec.CacheMiss = outcome.missCause()
	}

	cacheBefore := m.ontology.Stats()
	lookupStart := time.Now()
	_, lookupSpan := obs.StartSpan(ctx, "compose.lookup")
	candidates, err := core.GatherCandidates(ctx, t, m.reg, m.props)
	lookupSpan.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("qasom: %w", err)
	}
	lookupDur := time.Since(lookupStart)
	cacheDelta := m.ontology.Stats().Delta(cacheBefore)
	m.met.phaseSeconds.With("lookup").ObserveDuration(lookupDur)

	var res *core.Result
	if req.Distributed {
		replicas := make(map[string][]core.Transport, len(candidates))
		for id, list := range candidates {
			dev := core.NewDeviceNode("dev-"+id, 2*time.Millisecond)
			dev.Host(id, list)
			replicas[id] = []core.Transport{&core.InProcessTransport{Name: dev.Name, Selector: dev}}
		}
		// The façade keeps the middleware's own registry view as the
		// degradation fallback: a lost coordinator downgrades the
		// selection (Stats.Fallbacks, Result.Degraded) instead of
		// failing the composition.
		res, err = core.NewResilientDistributedSelector(
			core.Options{K: m.opts.K, MaxAlternates: m.opts.MaxAlternates, Seed: m.opts.Seed, Workers: m.opts.Workers},
			replicas,
			core.DistConfig{Fallback: candidates},
		).Select(ctx, coreReq)
	} else {
		res, err = m.selector.SelectContext(ctx, coreReq, candidates)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.CandidateLookup = lookupDur
	res.Stats.MatchCacheHits = cacheDelta.MatchHits
	res.Stats.MatchCacheMisses = cacheDelta.MatchMisses
	m.met.phaseSeconds.With("local").ObserveDuration(res.Stats.LocalDuration)
	m.met.phaseSeconds.With("global").ObserveDuration(res.Stats.GlobalDuration)
	rec.Phases.Lookup = lookupDur
	fillSelectionRecord(rec, res)
	if m.opts.ParetoMode {
		m.met.paretoFrontSize.Observe(float64(res.Stats.FrontSize))
		rec.Events = append(rec.Events, fmt.Sprintf("pareto-front-size=%d", res.Stats.FrontSize))
	}
	if cacheable {
		m.plans.put(planKey, planEpochSnap, res)
	}
	return m.wrapComposition(coreReq, res), nil
}

// fillSelectionRecord copies the selection outcome into the flight
// record: phase timings, resilience/degradation counters and the final
// bindings with their per-activity utility contributions.
func fillSelectionRecord(rec *obs.RequestRecord, res *core.Result) {
	rec.Phases.Local = res.Stats.LocalDuration
	rec.Phases.Global = res.Stats.GlobalDuration
	rec.Degraded = res.Degraded
	rec.DegradedCauses = res.Stats.DegradedCauses
	rec.Retries = res.Stats.Retries
	rec.Hedges = res.Stats.Hedges
	rec.BreakerSkips = res.Stats.BreakerSkips
	rec.Fallbacks = res.Stats.Fallbacks
	rec.Feasible = res.Feasible
	rec.Utility = res.Utility
	rec.Bindings = res.BindingRecords()
}

// wrapComposition attaches the adaptation runtime and manager to a
// selection result (freshly computed or replayed from the plan cache).
// Substitution-index registration is deferred to the first Execute (see
// Composition.track) so the compose hot path pays nothing for it.
func (m *Middleware) wrapComposition(coreReq *core.Request, res *core.Result) *Composition {
	manager := &adapt.Manager{
		Registry: m.reg,
		Repo:     m.repo,
		Selector: m.selector,
		Monitor:  m.mon,
		Obs:      m.obs,
	}
	manager.Options.Match.AllowSubsume = true
	manager.Options.Match.AllowMerge = true
	return &Composition{
		mw:      m,
		runtime: adapt.NewRuntime(coreReq, res),
		manager: manager,
	}
}

// resolveTask accepts an abstract-BPEL document or the name of a
// registered task-class behaviour.
func (m *Middleware) resolveTask(spec string) (*task.Task, error) {
	if spec == "" {
		return nil, fmt.Errorf("qasom: empty task")
	}
	// A registered behaviour name?
	for _, className := range m.repo.Names() {
		for _, b := range m.repo.Class(className).Behaviours {
			if b.Name == spec {
				return b, nil
			}
		}
	}
	return bpel.ParseString(spec)
}

// SelectionStats attributes the cost of the selection that produced
// this composition: where the time went (candidate lookup vs. QASSA's
// local and global phases), how parallel the local phase actually ran,
// and how effective the semantic caches were. Cache counters are
// per-ontology deltas sampled around the lookup, so under concurrent
// Compose calls they are approximate attributions.
type SelectionStats struct {
	// CandidateLookup is the time spent resolving candidates from the
	// registry (semantic matching, vector alignment).
	CandidateLookup time.Duration
	// LocalPhase and GlobalPhase split QASSA's wall time.
	LocalPhase, GlobalPhase time.Duration
	// Workers is the local-phase worker pool size; PeakWorkersBusy the
	// highest concurrent occupancy observed.
	Workers, PeakWorkersBusy int
	// LevelsExplored, Evaluations and RepairSwaps count global-phase work.
	LevelsExplored, Evaluations, RepairSwaps int
	// MatchCacheHits/Misses report the ontology match-memo effectiveness
	// during candidate lookup.
	MatchCacheHits, MatchCacheMisses uint64
	// Retries, Hedges, BreakerSkips and Fallbacks count the resilience
	// layer's work during distributed selection (all zero for a
	// centralized selection or a fault-free distributed one).
	Retries, Hedges, BreakerSkips, Fallbacks int
	// Degraded reports that at least one activity's coordinator was
	// unreachable and the requester ran that local phase itself.
	Degraded bool
	// CacheHit reports that this composition was served from the
	// selection-plan cache: the bindings are bit-identical to a fresh
	// selection at the same registry epoch, but the durations and work
	// counters describe the original run that populated the cache.
	CacheHit bool
	// FrontSize is the number of non-dominated compositions the
	// Pareto-front mode returned (0 in scalar mode).
	FrontSize int
}

// SelectionStats returns the work profile of this composition's
// selection run.
func (c *Composition) SelectionStats() SelectionStats {
	var out SelectionStats
	// View instead of Result: this accessor sits on the serving hot path
	// and must not pay for a deep copy of the selection.
	c.runtime.View(func(res *core.Result) {
		s := res.Stats
		out = SelectionStats{
			CandidateLookup:  s.CandidateLookup,
			LocalPhase:       s.LocalDuration,
			GlobalPhase:      s.GlobalDuration,
			Workers:          s.Workers,
			PeakWorkersBusy:  s.PeakWorkersBusy,
			LevelsExplored:   s.LevelsExplored,
			Evaluations:      s.Evaluations,
			RepairSwaps:      s.RepairSwaps,
			MatchCacheHits:   s.MatchCacheHits,
			MatchCacheMisses: s.MatchCacheMisses,
			Retries:          s.Retries,
			Hedges:           s.Hedges,
			BreakerSkips:     s.BreakerSkips,
			Fallbacks:        s.Fallbacks,
			Degraded:         res.Degraded,
			CacheHit:         s.CacheHit,
			FrontSize:        s.FrontSize,
		}
	})
	return out
}

// Feasible reports whether the selection satisfies every constraint.
func (c *Composition) Feasible() bool {
	var ok bool
	c.runtime.View(func(res *core.Result) { ok = res.Feasible })
	return ok
}

// Utility returns the composition utility F in [0,1].
func (c *Composition) Utility() float64 {
	var u float64
	c.runtime.View(func(res *core.Result) { u = res.Utility })
	return u
}

// Bindings maps activity IDs to the selected service IDs.
func (c *Composition) Bindings() map[string]string {
	var out map[string]string
	c.runtime.View(func(res *core.Result) {
		out = make(map[string]string, len(res.Assignment))
		for act, cand := range res.Assignment {
			out[act] = string(cand.Service.ID)
		}
	})
	return out
}

// FrontMember is one non-dominated composition of a Pareto-mode
// selection: a complete binding with its aggregated QoS and scalarized
// utility. Members are mutually non-dominated over the request's
// Objectives — picking between them is the caller's trade-off to make.
type FrontMember struct {
	// Bindings maps activity IDs to service IDs.
	Bindings map[string]string
	// QoS is the aggregated end-to-end QoS per property name.
	QoS map[string]float64
	// Utility is the member's scalarized utility F in [0,1] under the
	// request's weights.
	Utility float64
}

// Front returns the Pareto front of this composition's selection,
// best-scalarized member first; the first member is the binding the
// composition itself carries. Empty in scalar mode and for infeasible
// Pareto selections.
func (c *Composition) Front() []FrontMember {
	var out []FrontMember
	names := c.mw.props.Names()
	c.runtime.View(func(res *core.Result) {
		out = make([]FrontMember, len(res.Front))
		for i, m := range res.Front {
			fm := FrontMember{
				Bindings: make(map[string]string, len(m.Assignment)),
				QoS:      make(map[string]float64, len(names)),
				Utility:  m.Utility,
			}
			for act, cand := range m.Assignment {
				fm.Bindings[act] = string(cand.Service.ID)
			}
			for j, name := range names {
				fm.QoS[name] = m.Aggregated[j]
			}
			out[i] = fm
		}
	})
	return out
}

// Alternates returns the ranked substitute service IDs for an activity.
func (c *Composition) Alternates(activityID string) []string {
	var out []string
	c.runtime.View(func(res *core.Result) {
		alts := res.Alternates[activityID]
		out = make([]string, len(alts))
		for i, a := range alts {
			out[i] = string(a.Service.ID)
		}
	})
	return out
}

// AggregatedQoS returns the composition's aggregated QoS per property.
func (c *Composition) AggregatedQoS() map[string]float64 {
	out := make(map[string]float64, c.mw.props.Len())
	c.runtime.View(func(res *core.Result) {
		for j, name := range c.mw.props.Names() {
			out[name] = res.Aggregated[j]
		}
	})
	return out
}

// Behaviour returns the name of the behaviour currently executing.
func (c *Composition) Behaviour() string { return c.runtime.Behaviour.Name }

// Report documents one execution.
type Report struct {
	// Completed reports whether the whole task finished.
	Completed bool
	// Substitutions counts service substitutions applied.
	Substitutions int
	// BehaviourSwitches counts behavioural adaptations applied.
	BehaviourSwitches int
	// Invocations counts service invocation attempts.
	Invocations int
	// Failures counts failed attempts.
	Failures int
	// Duration is the wall time of the execution.
	Duration time.Duration
}

// Execute runs the composition over the simulated environment with the
// full adaptation loop: dynamic binding, monitoring, substitution on
// failure and behavioural adaptation when substitution is exhausted.
func (m *Middleware) Execute(ctx context.Context, c *Composition) (*Report, error) {
	ctx = obs.EnsureHub(ctx, m.obs)
	ctx, span := obs.StartSpan(ctx, "execute")
	m.met.executeTotal.Inc()
	report := &Report{}
	start := time.Now()
	var retErr error
	defer func() {
		report.Duration = time.Since(start)
		m.met.executeSeconds.ObserveExemplar(report.Duration.Seconds(), span.TraceID())
		if retErr != nil {
			m.met.executeErrors.Inc()
			span.Annotate("error", retErr.Error())
		}
		rec := obs.RequestRecord{
			Kind:     "execute",
			TraceID:  span.TraceID(),
			Tenant:   m.tenant,
			Task:     fmt.Sprintf("%016x", c.runtime.Behaviour.Fingerprint()),
			Start:    start,
			Duration: report.Duration,
			Feasible: report.Completed,
			Events: []string{
				fmt.Sprintf("invocations=%d", report.Invocations),
			},
		}
		if report.Failures > 0 {
			rec.Events = append(rec.Events, fmt.Sprintf("failures=%d", report.Failures))
		}
		if report.Substitutions > 0 {
			rec.Events = append(rec.Events, fmt.Sprintf("substitutions=%d", report.Substitutions))
		}
		if report.BehaviourSwitches > 0 {
			rec.Events = append(rec.Events, fmt.Sprintf("behaviour-switches=%d", report.BehaviourSwitches))
		}
		// Failover accounting: how the substitutions of this (and
		// previous) executions of the composition were served.
		fs := c.runtime.FailoverStats()
		if fs.IndexHits > 0 {
			rec.Events = append(rec.Events, fmt.Sprintf("failover-index-hits=%d", fs.IndexHits))
		}
		if len(fs.Fallbacks) > 0 {
			causes := make([]string, 0, len(fs.Fallbacks))
			for cause := range fs.Fallbacks {
				causes = append(causes, cause)
			}
			sort.Strings(causes)
			for _, cause := range causes {
				rec.Events = append(rec.Events, fmt.Sprintf("failover-fallback-%s=%d", cause, fs.Fallbacks[cause]))
			}
		}
		if retErr != nil {
			rec.Err = retErr.Error()
		}
		m.obs.Flight.Record(rec)
		span.End()
	}()

	// A previously completed composition re-executes from the start
	// (repeated runs of the same task, e.g. streaming segments).
	if _, ok := c.remainingTask(); !ok {
		c.runtime.ResetProgress()
	}

	// Warm the substitution index before the first invocation: the first
	// Execute registers the composition with the tracker, and a cold or
	// evicted index builds synchronously here (off the failure path), so
	// failures during this execution resolve with a lock-free lookup.
	c.track()
	if c.manager.Index != nil {
		c.manager.Index.BuildNow()
	}

	for round := 0; round < 4; round++ {
		remaining, ok := c.remainingTask()
		if !ok {
			report.Completed = true
			report.Substitutions = c.runtime.Substitutions()
			return report, nil
		}
		execu := &exec.Executor{
			Invoker:    m.env,
			Binder:     c.runtime,
			Monitor:    m.mon,
			OnFailure:  c.manager.FailureHandler(c.runtime),
			OnComplete: c.manager.CompletionHook(c.runtime),
			Options:    exec.Options{Seed: m.opts.Seed + int64(round)},
		}
		trace, err := execu.Run(ctx, remaining)
		report.Invocations += len(trace.Records)
		report.Failures += trace.Failures()
		if err == nil {
			report.Completed = true
			report.Substitutions = c.runtime.Substitutions()
			return report, nil
		}
		if ctx.Err() != nil {
			retErr = ctx.Err()
			return report, retErr
		}
		// Substitution exhausted inside the executor: behavioural
		// adaptation is the second line of defence.
		if _, aerr := c.manager.AdaptBehaviour(c.runtime); aerr != nil {
			report.Substitutions = c.runtime.Substitutions()
			retErr = fmt.Errorf("qasom: execution failed and adaptation impossible: %w (execution: %v)", aerr, err)
			return report, retErr
		}
		report.BehaviourSwitches++
	}
	report.Substitutions = c.runtime.Substitutions()
	retErr = fmt.Errorf("qasom: execution did not converge after repeated adaptation")
	return report, retErr
}

// ExecutableBPEL renders the composition as an executable-BPEL document:
// the abstract process with every activity bound to its selected concrete
// service (Chapter VI §2.4).
func (c *Composition) ExecutableBPEL() ([]byte, error) {
	var bindings map[string]bpel.Binding
	c.runtime.View(func(res *core.Result) {
		bindings = make(map[string]bpel.Binding, len(res.Assignment))
		for act, cand := range res.Assignment {
			bindings[act] = bpel.Binding{
				Service: string(cand.Service.ID),
				Address: cand.Service.Address,
			}
		}
	})
	return bpel.MarshalExecutable(c.runtime.Behaviour, bindings)
}

// Assessment is a composition-level health check against the request's
// constraints, using run-time monitoring data.
type Assessment struct {
	// Current holds the aggregated run-time QoS per property.
	Current map[string]float64
	// Violated lists properties whose constraints the current aggregate
	// breaks.
	Violated []string
	// PredictedViolated lists properties whose constraints the
	// trend-predicted aggregate breaks (the proactive signal).
	PredictedViolated []string
}

// Healthy reports whether nothing is (or is about to be) violated.
func (a Assessment) Healthy() bool {
	return len(a.Violated) == 0 && len(a.PredictedViolated) == 0
}

// Assess checks the composition's run-time QoS against its constraints:
// globally (aggregated over the whole task from monitor estimates,
// falling back to advertised values) and proactively (linear-trend
// prediction `horizon` observations ahead).
func (c *Composition) Assess(horizon int) Assessment {
	var advertised map[string]qos.Vector
	var binding map[string]registry.ServiceID
	c.runtime.View(func(res *core.Result) {
		advertised = make(map[string]qos.Vector, len(res.Assignment))
		binding = make(map[string]registry.ServiceID, len(res.Assignment))
		for act, cand := range res.Assignment {
			advertised[act] = cand.Vector
			binding[act] = cand.Service.ID
		}
	})
	cm := monitor.NewCompositionMonitor(c.runtime.Behaviour, c.mw.props,
		c.runtime.Req.Constraints, c.runtime.Req.EffectiveApproach(), advertised, binding)
	a := cm.Assess(c.mw.mon, horizon)
	out := Assessment{
		Current:           make(map[string]float64, c.mw.props.Len()),
		Violated:          a.Violated,
		PredictedViolated: a.PredictedViolated,
	}
	for j, name := range c.mw.props.Names() {
		out.Current[name] = a.Current[j]
	}
	return out
}

// Substitute replaces the service bound to an activity with its best
// healthy alternate (the manual trigger for proactive adaptation); it
// returns the substitute's service ID.
func (c *Composition) Substitute(activityID string) (string, error) {
	cand, err := c.manager.Substitute(c.runtime, activityID, nil)
	if err != nil {
		return "", err
	}
	return string(cand.Service.ID), nil
}

// HealReport documents one proactive healing pass.
type HealReport struct {
	// Healthy reports whether the composition ended the pass with no
	// current or predicted violations.
	Healthy bool
	// Substitutions lists "activity: old → new" for each applied swap.
	Substitutions []string
	// BehaviourSwitched reports whether behavioural adaptation ran.
	BehaviourSwitched bool
}

// Heal is the proactive QoS-driven adaptation controller: it assesses
// the composition against its constraints (current and trend-predicted
// aggregates) and, when unhealthy, applies ONE adaptation action — it
// substitutes the worst-contributing bound service, or, when no
// substitution is possible anywhere, falls back to behavioural
// adaptation. One action per call by design: further actions need fresh
// run-time observations of the new binding, so the caller interleaves
// Heal with executions (e.g. one per streaming segment). Healing is
// best-effort: when the environment has nothing better to offer, the
// report returns Healthy=false without error.
func (c *Composition) Heal(horizon int) (*HealReport, error) {
	report := &HealReport{}
	a := c.Assess(horizon)
	if a.Healthy() {
		report.Healthy = true
		return report, nil
	}
	for _, target := range c.contributorsByImpact(a) {
		old := c.Bindings()[target]
		sub, err := c.Substitute(target)
		if err != nil {
			continue
		}
		report.Substitutions = append(report.Substitutions,
			fmt.Sprintf("%s: %s → %s", target, old, sub))
		report.Healthy = c.Assess(horizon).Healthy()
		return report, nil
	}
	if len(a.Violated) == 0 {
		// Only a predicted violation and no degraded substitutable
		// binding: watchful waiting beats churning healthy bindings.
		return report, nil
	}
	// Substitution exhausted everywhere: behavioural adaptation. A
	// fully-completed runtime re-plans from the start.
	if _, done := c.remainingTask(); !done {
		c.runtime.ResetProgress()
	}
	if _, aerr := c.manager.AdaptBehaviour(c.runtime); aerr == nil {
		report.BehaviourSwitched = true
	}
	report.Healthy = c.Assess(horizon).Healthy()
	return report, nil
}

// healDriftMargin is the relative drift beyond the advertised value at
// which a binding counts as degraded (and so substitutable by Heal):
// smaller drifts are normal jitter/link cost, and churning a binding that
// delivers what it promised never helps.
const healDriftMargin = 0.25

// contributorsByImpact returns the activities whose bound services are
// *degraded* — their monitored estimate drifted beyond the advertised
// value by healDriftMargin on the first violated (or predicted-violated)
// property — ordered worst first. Activities still to run come before
// completed ones (between executions everything is completed and all are
// fair game).
func (c *Composition) contributorsByImpact(a Assessment) []string {
	props := a.Violated
	if len(props) == 0 {
		props = a.PredictedViolated
	}
	if len(props) == 0 {
		return nil
	}
	j, ok := c.mw.props.Index(props[0])
	if !ok {
		return nil
	}
	p := c.mw.props.At(j)
	type scored struct {
		act     string
		value   float64
		pending bool
	}
	// Snapshot the bindings under View (the monitor and completion
	// lookups below take their own locks, so they run outside it).
	type bindingRow struct {
		act  string
		cand registry.Candidate
	}
	var rows []bindingRow
	c.runtime.View(func(res *core.Result) {
		rows = make([]bindingRow, 0, len(res.Assignment))
		for act, cand := range res.Assignment {
			rows = append(rows, bindingRow{act: act, cand: cand})
		}
	})
	list := make([]scored, 0, len(rows))
	for _, row := range rows {
		act, cand := row.act, row.cand
		est, has := c.mw.mon.Estimate(cand.Service.ID)
		if !has {
			continue // unobserved: trust the advertisement
		}
		v := est[j]
		advertised := cand.Vector[j]
		degraded := false
		if p.Direction == qos.Minimized {
			degraded = v > advertised*(1+healDriftMargin)
		} else {
			degraded = v < advertised*(1-healDriftMargin)
		}
		if !degraded {
			continue
		}
		list = append(list, scored{act: act, value: v, pending: !c.runtime.Completed(act)})
	}
	sort.SliceStable(list, func(x, y int) bool {
		if list[x].pending != list[y].pending {
			return list[x].pending
		}
		if list[x].value != list[y].value {
			return p.Worse(list[x].value, list[y].value)
		}
		return list[x].act < list[y].act
	})
	out := make([]string, len(list))
	for i, s := range list {
		out[i] = s.act
	}
	return out
}

// remainingTask computes the still-to-run part of the current behaviour.
func (c *Composition) remainingTask() (*task.Task, bool) {
	completed := make(map[string]bool)
	for _, a := range c.runtime.Behaviour.Activities() {
		if c.runtime.Completed(a.ID) {
			completed[a.ID] = true
		}
	}
	return c.runtime.Behaviour.Remaining(completed)
}
