package qasom_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"qasom"
)

const behaviourA = `<process name="shopA" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <invoke activity="order" concept="OrderItem"/>
    <invoke activity="pay" concept="Payment"/>
  </sequence>
</process>`

const behaviourB = `<process name="shopB" concept="Shopping">
  <sequence>
    <invoke activity="fulfil" concept="Shopping"/>
    <invoke activity="mpay" concept="MobilePayment"/>
  </sequence>
</process>`

func stdQoS(rt float64) map[string]float64 {
	return map[string]float64{
		"responseTime": rt,
		"price":        5,
		"availability": 0.95,
		"reliability":  0.9,
		"throughput":   40,
	}
}

// newMall publishes a small shopping environment through the public API.
func newMall(t *testing.T) *qasom.Middleware {
	t.Helper()
	mw, err := qasom.New()
	if err != nil {
		t.Fatal(err)
	}
	specs := []struct {
		prefix, capability string
	}{
		{"browse", "BrowseCatalog"},
		{"order", "OrderItem"},
		{"pay", "CardPayment"},
		{"fulfil", "Shopping"},
		{"mpay", "MobilePayment"},
	}
	for _, s := range specs {
		for i := 0; i < 4; i++ {
			err := mw.Publish(qasom.Service{
				ID:         fmt.Sprintf("%s-%d", s.prefix, i),
				Capability: s.capability,
				QoS:        stdQoS(40 + float64(5*i)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mw.RegisterTaskClass("shopping", behaviourA, behaviourB); err != nil {
		t.Fatal(err)
	}
	return mw
}

func TestNewDefaults(t *testing.T) {
	mw, err := qasom.New()
	if err != nil {
		t.Fatal(err)
	}
	props := mw.Properties()
	if len(props) != 5 || props[0] != "responseTime" {
		t.Errorf("Properties = %v", props)
	}
	ext, err := qasom.New(qasom.Options{ExtendedProperties: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Properties()) != 8 {
		t.Errorf("extended properties = %d, want 8", len(ext.Properties()))
	}
	if _, err := qasom.New(qasom.Options{}, qasom.Options{}); err == nil {
		t.Error("two Options values should be rejected")
	}
}

func TestPublishValidationAndCount(t *testing.T) {
	mw, _ := qasom.New()
	if err := mw.Publish(qasom.Service{}); err == nil {
		t.Error("empty service should be rejected")
	}
	if err := mw.Publish(qasom.Service{ID: "x", Capability: "BookSale", QoS: stdQoS(50)}); err != nil {
		t.Fatal(err)
	}
	if mw.ServiceCount() != 1 {
		t.Errorf("ServiceCount = %d", mw.ServiceCount())
	}
	if !mw.Withdraw("x") || mw.Withdraw("x") {
		t.Error("Withdraw semantics wrong")
	}
}

func TestPublishWithAliasVocabulary(t *testing.T) {
	mw, _ := qasom.New()
	// A provider using its own vocabulary ("Delay", "Uptime", "Fee").
	err := mw.Publish(qasom.Service{
		ID: "het", Capability: "BookSale",
		QoS: map[string]float64{
			"Delay": 50, "Fee": 5, "Uptime": 0.95, "SuccessRate": 0.9, "Rate": 40,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := mw.Compose(qasom.Request{Task: `<process name="p" concept="Shopping">
	  <invoke activity="buy" concept="BookSale"/>
	</process>`})
	if err != nil {
		t.Fatalf("Compose over alias vocabulary: %v", err)
	}
	if comp.Bindings()["buy"] != "het" {
		t.Errorf("bindings = %v", comp.Bindings())
	}
}

func TestComposeFeasible(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{
		Task: behaviourA,
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 200},
			{Property: "availability", Bound: 0.8},
		},
	})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if !comp.Feasible() {
		t.Fatal("composition should be feasible")
	}
	b := comp.Bindings()
	if len(b) != 3 || b["browse"] == "" || b["order"] == "" || b["pay"] == "" {
		t.Errorf("bindings = %v", b)
	}
	agg := comp.AggregatedQoS()
	if agg["responseTime"] > 200 {
		t.Errorf("aggregated rt %g exceeds bound", agg["responseTime"])
	}
	if u := comp.Utility(); u < 0 || u > 1 {
		t.Errorf("utility %g outside [0,1]", u)
	}
	if len(comp.Alternates("order")) == 0 {
		t.Error("alternates should exist")
	}
	if comp.Behaviour() != "shopA" {
		t.Errorf("behaviour = %s", comp.Behaviour())
	}
}

func TestComposeByBehaviourName(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{Task: "shopB"})
	if err != nil {
		t.Fatalf("Compose by name: %v", err)
	}
	if len(comp.Bindings()) != 2 {
		t.Errorf("bindings = %v", comp.Bindings())
	}
}

func TestComposeErrors(t *testing.T) {
	mw := newMall(t)
	cases := []struct {
		name string
		req  qasom.Request
	}{
		{"empty task", qasom.Request{}},
		{"bad bpel", qasom.Request{Task: "<nope"}},
		{"unknown weight", qasom.Request{Task: behaviourA, Weights: map[string]float64{"zz": 1}}},
		{"unknown approach", qasom.Request{Task: behaviourA, Approach: "psychic"}},
		{"no services", qasom.Request{Task: `<process name="p" concept="X"><invoke activity="a" concept="LabAnalysis"/></process>`}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := mw.Compose(tt.req); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestComposeApproachesAndWeights(t *testing.T) {
	mw := newMall(t)
	for _, approach := range []string{"pessimistic", "optimistic", "mean-value"} {
		comp, err := mw.Compose(qasom.Request{
			Task:     behaviourA,
			Approach: approach,
			Weights:  map[string]float64{"responseTime": 3, "price": 1},
		})
		if err != nil {
			t.Fatalf("approach %s: %v", approach, err)
		}
		if len(comp.Bindings()) != 3 {
			t.Errorf("approach %s: bindings %v", approach, comp.Bindings())
		}
	}
}

func TestExecuteHappyPath(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{Task: behaviourA})
	if err != nil {
		t.Fatal(err)
	}
	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !report.Completed || report.Failures != 0 || report.Invocations != 3 {
		t.Errorf("report = %+v", report)
	}
}

func TestExecuteWithSubstitution(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{Task: behaviourA})
	if err != nil {
		t.Fatal(err)
	}
	mw.SetDown(comp.Bindings()["order"])
	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		t.Fatalf("Execute with a down service: %v", err)
	}
	if !report.Completed || report.Substitutions == 0 {
		t.Errorf("substitution expected: %+v", report)
	}
	if report.BehaviourSwitches != 0 {
		t.Errorf("no behaviour switch expected: %+v", report)
	}
}

func TestExecuteWithBehaviouralAdaptation(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{Task: behaviourA})
	if err != nil {
		t.Fatal(err)
	}
	// Every OrderItem provider leaves the environment: substitution is
	// impossible, the composition must switch to behaviour shopB.
	for i := 0; i < 4; i++ {
		mw.Withdraw(fmt.Sprintf("order-%d", i))
	}
	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		t.Fatalf("Execute with lost capability: %v", err)
	}
	if !report.Completed {
		t.Fatal("composition should complete via behavioural adaptation")
	}
	if report.BehaviourSwitches == 0 {
		t.Error("behaviour switch expected")
	}
	if comp.Behaviour() != "shopB" {
		t.Errorf("behaviour = %s, want shopB", comp.Behaviour())
	}
}

func TestExecuteUnrecoverable(t *testing.T) {
	mw, _ := qasom.New()
	// Single always-failing service, no task class to fall back to.
	if err := mw.Publish(qasom.Service{ID: "s", Capability: "BookSale", QoS: stdQoS(50), FailProb: 1}); err != nil {
		t.Fatal(err)
	}
	comp, err := mw.Compose(qasom.Request{Task: `<process name="p" concept="Shopping">
	  <invoke activity="buy" concept="BookSale"/>
	</process>`})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err == nil {
		t.Error("unrecoverable execution should error")
	}
}

func TestDegradeThroughAPI(t *testing.T) {
	mw := newMall(t)
	if err := mw.Degrade("order-0", map[string]float64{"responseTime": 500}); err != nil {
		t.Fatal(err)
	}
	if err := mw.Degrade("order-0", map[string]float64{"nope": 1}); err == nil {
		t.Error("unknown property should error")
	}
	if err := mw.Degrade("ghost", map[string]float64{"responseTime": 1}); err == nil {
		t.Error("unknown service should error")
	}
}

func TestComposeDistributed(t *testing.T) {
	mw := newMall(t)
	central, err := mw.Compose(qasom.Request{Task: behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 200}}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := mw.Compose(qasom.Request{Task: behaviourA, Distributed: true,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 200}}})
	if err != nil {
		t.Fatalf("distributed Compose: %v", err)
	}
	if dist.Feasible() != central.Feasible() {
		t.Error("distributed and central feasibility differ")
	}
	for act, svc := range central.Bindings() {
		if dist.Bindings()[act] != svc {
			t.Errorf("activity %s: distributed chose %s, central %s", act, dist.Bindings()[act], svc)
		}
	}
}

func TestAssessAndProactiveSubstitute(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{
		Task:        behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 250}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh composition: healthy on advertised values.
	if a := comp.Assess(3); !a.Healthy() {
		t.Fatalf("fresh composition should be healthy: %+v", a)
	}
	// The bound order service degrades badly; executing a few times
	// feeds the monitor, and the assessment must flag responseTime.
	orderSvc := comp.Bindings()["order"]
	if err := mw.Degrade(orderSvc, map[string]float64{"responseTime": 400}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	a := comp.Assess(3)
	if len(a.Violated) == 0 {
		t.Fatalf("degraded service should violate: %+v", a)
	}
	// Proactive substitution repairs the binding.
	sub, err := comp.Substitute("order")
	if err != nil {
		t.Fatal(err)
	}
	if sub == orderSvc {
		t.Error("substitute should differ")
	}
	if comp.Bindings()["order"] != sub {
		t.Error("binding not updated")
	}
}

func TestExecutableBPEL(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{Task: behaviourA})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := comp.ExecutableBPEL()
	if err != nil {
		t.Fatalf("ExecutableBPEL: %v", err)
	}
	s := string(doc)
	if !strings.Contains(s, `executable="true"`) {
		t.Error("executable marker missing")
	}
	for act, svc := range comp.Bindings() {
		if !strings.Contains(s, fmt.Sprintf("partner=%q", svc)) {
			t.Errorf("binding for %s (%s) missing from document:\n%s", act, svc, s)
		}
	}
}

func TestContractsLifecycle(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{Task: behaviourA})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := mw.EstablishContracts(comp, 5)
	if err != nil {
		t.Fatalf("EstablishContracts: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("contracts = %v", ids)
	}
	// Before any execution: compliant, no penalties.
	for _, r := range mw.CheckContracts() {
		if !r.Compliant || r.Penalty != 0 {
			t.Errorf("fresh contract should be compliant: %+v", r)
		}
	}
	// The order service degrades far past its advertised values; after an
	// execution the compliance check must flag it and accrue a penalty.
	orderSvc := comp.Bindings()["order"]
	if err := mw.Degrade(orderSvc, map[string]float64{"responseTime": 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	var flagged *qasom.ContractReport
	for _, r := range mw.CheckContracts() {
		r := r
		if r.Service == orderSvc {
			flagged = &r
		}
	}
	if flagged == nil {
		t.Fatal("no report for the degraded service")
	}
	if flagged.Compliant || flagged.Penalty <= 0 || len(flagged.Violations) == 0 {
		t.Errorf("degraded service should violate its contract: %+v", flagged)
	}
	if flagged.Tier == string("SatisfiedTier") || flagged.Tier == "" {
		t.Errorf("tier should reflect dissatisfaction: %q", flagged.Tier)
	}
	if mw.AccruedPenalty(flagged.ContractID) <= 0 {
		t.Error("penalty should accrue")
	}
	// No contracts → empty reports, zero penalties.
	fresh, _ := qasom.New()
	if got := fresh.CheckContracts(); got != nil {
		t.Errorf("no contracts should give nil reports, got %v", got)
	}
	if fresh.AccruedPenalty("nope") != 0 {
		t.Error("unknown penalty should be 0")
	}
}

func TestHealSubstitutesDegradedService(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{
		Task:        behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 250}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the bound order service far past the budget and execute so
	// the monitor observes it.
	victim := comp.Bindings()["order"]
	if err := mw.Degrade(victim, map[string]float64{"responseTime": 400}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	if comp.Assess(3).Healthy() {
		t.Fatal("composition should be unhealthy before healing")
	}
	report, err := comp.Heal(3)
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if len(report.Substitutions) == 0 {
		t.Fatalf("healing should substitute: %+v", report)
	}
	if comp.Bindings()["order"] == victim {
		t.Error("degraded service should be replaced")
	}
	if !report.Healthy {
		t.Errorf("composition should be healthy after healing: %+v", report)
	}
}

func TestHealBehaviouralFallback(t *testing.T) {
	// A mall with a SINGLE provider per behaviourA activity: when it
	// degrades there is no substitute, so Heal must switch behaviour.
	mw, err := qasom.New()
	if err != nil {
		t.Fatal(err)
	}
	singles := []struct{ id, capability string }{
		{"browse-0", "BrowseCatalog"},
		{"order-0", "OrderItem"},
		{"pay-0", "CardPayment"},
		{"fulfil-0", "Shopping"},
		{"fulfil-1", "Shopping"},
		{"mpay-0", "MobilePayment"},
	}
	for _, s := range singles {
		if err := mw.Publish(qasom.Service{ID: s.id, Capability: s.capability, QoS: stdQoS(40)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.RegisterTaskClass("shopping", behaviourA, behaviourB); err != nil {
		t.Fatal(err)
	}
	comp, err := mw.Compose(qasom.Request{
		Task:        behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// order-0 degrades: no substitutes exist (mpay/card are Payment, and
	// fulfil is more general than OrderItem, so none are alternates).
	if err := mw.Degrade("order-0", map[string]float64{"responseTime": 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	report, err := comp.Heal(3)
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if !report.BehaviourSwitched {
		t.Fatalf("behavioural fallback expected: %+v", report)
	}
	if comp.Behaviour() != "shopB" {
		t.Errorf("behaviour = %s, want shopB", comp.Behaviour())
	}
}

func TestHealNoopWhenHealthy(t *testing.T) {
	mw := newMall(t)
	comp, err := mw.Compose(qasom.Request{
		Task:        behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 400}},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := comp.Heal(3)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Healthy || len(report.Substitutions) != 0 || report.BehaviourSwitched {
		t.Errorf("healthy composition should heal as a no-op: %+v", report)
	}
}

func TestMobilityThroughAPI(t *testing.T) {
	mw, _ := qasom.New()
	if err := mw.EnableMobility(100, 40, 2); err != nil {
		t.Fatal(err)
	}
	if err := mw.Publish(qasom.Service{
		ID: "s1", Capability: "BookSale", Device: "phone-1", QoS: stdQoS(50),
	}); err != nil {
		t.Fatal(err)
	}
	if err := mw.PlaceDevice("phone-1", 50, 80, 0); err != nil { // 30 units from the user
		t.Fatal(err)
	}
	comp, err := mw.Compose(qasom.Request{Task: `<process name="p" concept="Shopping">
	  <invoke activity="buy" concept="BookSale"/>
	</process>`})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	// Delivered rt = 50 + 30·2 = 110, visible through the assessment.
	a := comp.Assess(1)
	if a.Current["responseTime"] < 105 {
		t.Errorf("link latency not applied: rt %g", a.Current["responseTime"])
	}
	// Signal weakens as the user walks away; breaks beyond range.
	s1 := mw.SignalStrength("phone-1")
	mw.MoveUser(50, 120)
	if s2 := mw.SignalStrength("phone-1"); s2 != 0 {
		t.Errorf("signal beyond range = %g, want 0", s2)
	}
	if s1 <= 0 {
		t.Errorf("in-range signal = %g, want > 0", s1)
	}
	mw.Tick(1) // must not panic
}

func TestRegisterTaskClassValidation(t *testing.T) {
	mw, _ := qasom.New()
	if err := mw.RegisterTaskClass("x"); err == nil {
		t.Error("class without behaviours should fail")
	}
	if err := mw.RegisterTaskClass("x", "<bad"); err == nil {
		t.Error("malformed behaviour should fail")
	}
	if err := mw.RegisterTaskClass("shopping", behaviourA, behaviourB); err != nil {
		t.Fatal(err)
	}
	if got := mw.TaskClasses(); len(got) != 1 || got[0] != "shopping" {
		t.Errorf("TaskClasses = %v", got)
	}
}
