package qasom_test

import (
	"fmt"

	"qasom"
)

// Example shows the minimal publish → compose flow: two bookshops with
// different QoS trade-offs, a one-activity task, and a budget constraint
// that forces the cheaper shop.
func Example() {
	mw, err := qasom.New()
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range []qasom.Service{
		{ID: "premium", Capability: "BookSale", QoS: map[string]float64{
			"responseTime": 40, "price": 15, "availability": 0.99, "reliability": 0.97, "throughput": 60}},
		{ID: "budget", Capability: "BookSale", QoS: map[string]float64{
			"responseTime": 120, "price": 5, "availability": 0.92, "reliability": 0.9, "throughput": 30}},
	} {
		if err := mw.Publish(s); err != nil {
			fmt.Println(err)
			return
		}
	}
	comp, err := mw.Compose(qasom.Request{
		Task: `<process name="p" concept="Shopping">
		         <invoke activity="buy" concept="BookSale"/>
		       </process>`,
		Constraints: []qasom.Constraint{{Property: "price", Bound: 10}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(comp.Feasible(), comp.Bindings()["buy"])
	// Output: true budget
}
